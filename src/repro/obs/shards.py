"""Fork/merge observability for sharded (thread-pool) execution.

The rest of :mod:`repro.obs` is built around process-global slots — one
registry, one tracer, one event log, one telemetry stream.  That is the
right shape for a serial run and exactly the wrong shape for a worker
pool: the tracer's span stack is a single list, gauge writes from two
shards interleave, and per-worker telemetry would tear one JSONL file.
The concurrency manifest therefore classifies the registry and tracer as
``needs-merge-on-join`` — and this module is the merge.

:func:`fork_observability` (or the :class:`ObsFork` context manager it
returns) produces one :class:`ShardContext` per worker: a child metrics
registry, a child tracer rooted at a ``shard[i]`` span, a buffering
child event log, and — when the coordinator has a live telemetry stream
— a per-worker ``…-shard<i>-stream.jsonl`` fragment.  While the fork is
open, router proxies sit in the global slots and dispatch every call to
the *calling thread's* shard context (a ``threading.local`` binding
installed by ``ShardContext.__enter__``), falling back to the captured
parent instruments for the coordinator and unrelated threads.  Code
under test keeps calling ``metrics.counter(...)`` / ``trace.span(...)``
unchanged.

``merge_on_join`` folds everything back deterministically:

* counters sum per series; histograms merge bucket-wise (exact);
* gauges resolve by the ``(timestamp, shard index)`` tiebreak;
* each shard's span tree is grafted under the forking span with a
  ``shard`` attribute (one Perfetto lane per shard, see
  :mod:`repro.obs.chrometrace`);
* buffered events and per-worker stream fragments multiplex back in
  ``(ts, shard, seq)`` order with a ``shard`` field in the envelope,
  original timestamps preserved; fragment files are deleted.

Merge order is fixed (shard 0, 1, …) and counters/histograms are
commutative besides, so the merged state is independent of which worker
finished first.  :func:`run_sharded` packages the whole dance around a
``ThreadPoolExecutor`` and is the entry point the evaluator and the
experiment runner fan out through.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional

from ..concurrency import shard_safe
from . import events as events_mod
from . import metrics as metrics_mod
from . import telemetry as telemetry_mod
from . import tracing as tracing_mod
# Imported by name: ``repro.obs.session`` the *module* is shadowed on
# the package by the ``session()`` factory function.
from .session import active_session

__all__ = [
    "ShardContext", "ObsFork",
    "fork_observability", "merge_on_join",
    "run_sharded", "current_shard",
]

# Thread -> shard binding.  ``_local.ctx`` is the ShardContext the
# current thread runs inside; absent on the coordinator and on threads
# that are not part of a fork.  Manifest slot ``obs.shards.binding`` —
# only ``ShardContext.__enter__``/``__exit__`` write it.
_local = threading.local()


def current_shard() -> Optional[int]:
    """The calling thread's shard index, or ``None`` off the pool."""
    ctx = getattr(_local, "ctx", None)
    return None if ctx is None else ctx.index


def _bound_context() -> Optional["ShardContext"]:
    return getattr(_local, "ctx", None)


# ---------------------------------------------------------------------- #
# Per-worker child instruments
# ---------------------------------------------------------------------- #
class _BufferSink:
    """Event sink that holds records for the join-time multiplex."""

    __slots__ = ("records",)

    def __init__(self):
        self.records: List[Dict[str, object]] = []

    def __call__(self, record: Dict[str, object]) -> None:
        self.records.append(dict(record))


class _ShardStream(telemetry_mod.TelemetryStream):
    """Per-worker stream fragment: raw events only.

    No snapshotter, no Prometheus sibling, no health engine — those stay
    coordinator-owned.  Every event gets a ``shard`` envelope field; the
    join reads the fragment back, multiplexes it into the parent stream
    with original timestamps, and deletes the file.
    """

    def __init__(self, path, shard: int):
        super().__init__(path, registry=None, snapshot_seconds=None,
                         prom_path=False, engine=None)
        self.shard = shard

    def emit(self, event: str, **fields) -> None:
        fields.setdefault("shard", self.shard)
        super().emit(event, **fields)

    def close(self, final_snapshot: bool = True) -> None:
        # A fragment is not a stream: no final snapshot, no stream_end.
        if self._closed:
            return
        self._fh.close()
        self._closed = True


class ShardContext:
    """One worker's observability bundle.

    Child instruments exist only where the forked parent is live, so a
    fork over the default no-op stack allocates nothing and records
    nothing.  Entering the context binds the calling thread to this
    shard (the routers then dispatch to these children); exiting unbinds
    and accumulates the worker's wall seconds for the join digest.
    """

    def __init__(self, fork: "ObsFork", index: int):
        self.fork = fork
        self.index = index
        self.wall_seconds = 0.0
        self._previous: Optional["ShardContext"] = None
        self._t0 = 0.0

        self.registry: Optional[metrics_mod.Registry] = (
            metrics_mod.Registry() if fork.parent_registry.enabled else None
        )

        self.tracer: Optional[tracing_mod.Tracer] = None
        if fork.parent_tracer.enabled:
            self.tracer = tracing_mod.Tracer(
                trace_alloc=fork.parent_tracer.trace_alloc)
            # Root the child tree at the shard span so every worker span
            # lands under ``shard[i]`` and the join can graft the whole
            # tree in one move with shard attribution.
            self.tracer.root.name = f"shard[{index}]"
            self.tracer.root.attrs["shard"] = index

        self._event_buffer: Optional[_BufferSink] = None
        self.events: Optional[events_mod.EventLog] = None
        if fork.parent_events.enabled:
            self._event_buffer = _BufferSink()
            self.events = events_mod.EventLog([self._event_buffer])

        self.stream: Optional[_ShardStream] = None
        parent_stream = fork.parent_stream
        if isinstance(parent_stream, telemetry_mod.TelemetryStream):
            name = parent_stream.path.name
            if name.endswith(telemetry_mod.STREAM_SUFFIX):
                stem = name[: -len(telemetry_mod.STREAM_SUFFIX)]
            else:
                stem = parent_stream.path.stem
            self.stream = _ShardStream(
                parent_stream.path.with_name(
                    f"{stem}-shard{index}{telemetry_mod.STREAM_SUFFIX}"),
                index,
            )

    def __enter__(self) -> "ShardContext":
        self._previous = getattr(_local, "ctx", None)
        _local.ctx = self
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_seconds += time.perf_counter() - self._t0
        _local.ctx = self._previous
        return False


# ---------------------------------------------------------------------- #
# Router proxies: installed in the global slots while a fork is open
# ---------------------------------------------------------------------- #
class _RouterRegistry(metrics_mod.Registry):
    """Dispatches each registry call to the calling thread's shard."""

    def __init__(self, parent: metrics_mod.Registry):
        super().__init__()
        self._parent = parent

    def _target(self) -> metrics_mod.Registry:
        ctx = _bound_context()
        if ctx is not None and ctx.registry is not None:
            return ctx.registry
        return self._parent

    @property
    def enabled(self) -> bool:
        return self._target().enabled

    def counter(self, name, help=""):
        return self._target().counter(name, help)

    def gauge(self, name, help=""):
        return self._target().gauge(name, help)

    def histogram(self, name, help="", buckets=None):
        return self._target().histogram(name, help, buckets=buckets)

    def names(self):
        return self._target().names()

    def get(self, name):
        return self._target().get(name)

    def reset(self):
        self._target().reset()

    def merge_from(self, other, rank=0):
        self._target().merge_from(other, rank=rank)

    def snapshot(self):
        return self._target().snapshot()

    def compact_snapshot(self):
        return self._target().compact_snapshot()


class _RouterTracer(tracing_mod.Tracer):
    """Dispatches each tracer call to the calling thread's shard.

    Deliberately skips ``Tracer.__init__``: the router owns no tree of
    its own — every attribute anyone reads (``root``, ``_stack``,
    ``trace_alloc``) resolves against the routed target, so span context
    managers created through the router push/pop on the right stack.
    """

    # pylint: disable=super-init-not-called
    def __init__(self, parent: tracing_mod.Tracer):
        self._parent = parent

    def _target(self) -> tracing_mod.Tracer:
        ctx = _bound_context()
        if ctx is not None and ctx.tracer is not None:
            return ctx.tracer
        return self._parent

    @property
    def enabled(self) -> bool:
        return self._target().enabled

    @property
    def trace_alloc(self) -> bool:
        return self._target().trace_alloc

    @property
    def root(self):
        return self._target().root

    @property
    def _stack(self):
        return self._target()._stack

    def span(self, name, **attrs):
        return self._target().span(name, **attrs)

    def current(self):
        return self._target().current()

    def reset(self):
        self._target().reset()

    def to_dict(self):
        return self._target().to_dict()

    def write_jsonl(self, stream):
        return self._target().write_jsonl(stream)

    def report(self, min_wall: float = 0.0) -> str:
        return self._target().report(min_wall=min_wall)


class _RouterEventLog(events_mod.EventLog):
    """Dispatches each event-log call to the calling thread's shard."""

    # pylint: disable=super-init-not-called
    def __init__(self, parent: events_mod.EventLog):
        self._parent = parent

    def _target(self) -> events_mod.EventLog:
        ctx = _bound_context()
        if ctx is not None and ctx.events is not None:
            return ctx.events
        return self._parent

    @property
    def enabled(self) -> bool:
        return self._target().enabled

    @property
    def sinks(self):
        return self._target().sinks

    def add_sink(self, sink):
        self._target().add_sink(sink)

    def log(self, level, event, **fields):
        self._target().log(level, event, **fields)

    def append_raw(self, record):
        self._target().append_raw(record)

    def every(self, n, event, level=events_mod.DEBUG, **fields):
        self._target().every(n, event, level=level, **fields)

    def close(self):
        self._target().close()


class _RouterStream:
    """Dispatches each telemetry call to the calling thread's shard.

    Duck-typed like :class:`TelemetryStream`/:class:`NullStream`; only
    installed when the coordinator holds a real stream, so
    ``telemetry.is_active()`` stays truthful.
    """

    __slots__ = ("_parent",)

    def __init__(self, parent):
        self._parent = parent

    def _target(self):
        ctx = _bound_context()
        if ctx is not None and ctx.stream is not None:
            return ctx.stream
        return self._parent

    @property
    def events_written(self):
        return self._target().events_written

    @property
    def snapshots_written(self):
        return self._target().snapshots_written

    @property
    def engine(self):
        return self._target().engine

    def emit(self, event, **fields):
        self._target().emit(event, **fields)

    def append_raw(self, record):
        self._target().append_raw(record)

    def snapshot(self):
        self._target().snapshot()

    def maybe_snapshot(self):
        return self._target().maybe_snapshot()

    def close(self, final_snapshot: bool = True):
        self._target().close(final_snapshot=final_snapshot)


# ---------------------------------------------------------------------- #
# The fork itself
# ---------------------------------------------------------------------- #
class ObsFork:
    """Forked observability over the ambient obs stack.

    ``with ObsFork(n) as fork:`` opens a ``fork[<label>]`` span on the
    parent tracer, installs the routers, and exposes ``fork.contexts``
    — one :class:`ShardContext` per shard for workers to enter.  Exit
    merges everything back (:meth:`merge`, idempotent) and closes the
    fork span, so the join cost is visible inside the forking span.

    Nested forks are supported: if the slots already hold routers (an
    outer fork is open), the inner fork installs nothing — the existing
    routers dispatch through the same thread binding, and the inner
    merge folds into whatever the forking thread is bound to.
    """

    def __init__(self, shards: int, label: str = "fork"):
        if shards < 1:
            raise ValueError("a fork needs at least one shard")
        self.shards = shards
        self.label = label
        self.parent_registry = metrics_mod.get_registry()
        self.parent_tracer = tracing_mod.get_tracer()
        self.parent_events = events_mod.get_event_log()
        self.parent_stream = telemetry_mod.get_stream()
        self.merged = False
        self.digest: Dict[str, object] = {}
        self._saved: List = []
        self._span_cm = None
        self._fork_node: Optional[tracing_mod.SpanNode] = None
        self.contexts = [ShardContext(self, i) for i in range(shards)]

    def __enter__(self) -> "ObsFork":
        self._span_cm = self.parent_tracer.span(
            f"fork[{self.label}]", shards=self.shards)
        self._fork_node = self._span_cm.__enter__()
        self._install()
        return self

    def _install(self) -> None:
        installs = []
        if (self.parent_registry.enabled
                and not isinstance(self.parent_registry, _RouterRegistry)):
            installs.append((metrics_mod.set_registry,
                             _RouterRegistry(self.parent_registry)))
        if (self.parent_tracer.enabled
                and not isinstance(self.parent_tracer, _RouterTracer)):
            installs.append((tracing_mod.set_tracer,
                             _RouterTracer(self.parent_tracer)))
        if (self.parent_events.enabled
                and not isinstance(self.parent_events, _RouterEventLog)):
            installs.append((events_mod.set_event_log,
                             _RouterEventLog(self.parent_events)))
        if (isinstance(self.parent_stream, telemetry_mod.TelemetryStream)
                and not isinstance(self.parent_stream, _ShardStream)):
            installs.append((telemetry_mod.set_stream,
                             _RouterStream(self.parent_stream)))
        self._saved = [(setter, setter(router)) for setter, router in installs]

    def __exit__(self, exc_type, exc, tb) -> bool:
        try:
            self.merge()
        finally:
            if self._span_cm is not None:
                self._span_cm.__exit__(exc_type, exc, tb)
                self._span_cm = None
        return False

    # ------------------------------------------------------------------ #
    # The join
    # ------------------------------------------------------------------ #
    def merge(self) -> Dict[str, object]:
        """Fold every child back into the parents (idempotent).

        Restores the router-free slots first, then merges in fixed shard
        order: registries (counter sums, exact histogram merges, gauge
        ``(timestamp, shard)`` tiebreaks), span trees grafted under the
        forking span, buffered events and stream fragments multiplexed
        in ``(ts, shard, seq)`` order.  Returns — and records on the
        active session as ``last_shards`` — the per-shard timing digest
        that lands in the run record.
        """
        if self.merged:
            return self.digest
        self.merged = True
        for setter, previous in reversed(self._saved):
            setter(previous)
        self._saved = []

        workers = []
        for ctx in self.contexts:
            workers.append({"shard": ctx.index,
                            "wall_seconds": ctx.wall_seconds})
            if ctx.registry is not None:
                self.parent_registry.merge_from(ctx.registry, rank=ctx.index)
            if ctx.tracer is not None and self._fork_node is not None:
                shard_root = ctx.tracer.root
                shard_root.calls = max(shard_root.calls, 1)
                shard_root.wall = max(shard_root.wall, ctx.wall_seconds)
                self._fork_node.child(shard_root.name).merge_from(shard_root)

        self._merge_events()
        self._merge_streams()

        self.digest = {"count": self.shards, "workers": workers}
        session = active_session()
        if session is not None:
            session.last_shards = self.digest
        return self.digest

    def _merge_events(self) -> None:
        staged = []
        for ctx in self.contexts:
            if ctx._event_buffer is None:
                continue
            for seq, record in enumerate(ctx._event_buffer.records):
                record.setdefault("shard", ctx.index)
                staged.append(((record.get("ts", 0.0), ctx.index, seq),
                               record))
            ctx._event_buffer.records = []
        for _, record in sorted(staged, key=lambda item: item[0]):
            self.parent_events.append_raw(record)

    def _merge_streams(self) -> None:
        staged = []
        had_fragments = False
        for ctx in self.contexts:
            if ctx.stream is None:
                continue
            had_fragments = True
            ctx.stream.close()
            try:
                records = telemetry_mod.read_stream(
                    ctx.stream.path, on_warning=lambda message: None)
            except OSError:
                records = []
            for seq, record in enumerate(records):
                record.setdefault("shard", ctx.index)
                staged.append(((record.get("ts", 0.0), ctx.index, seq),
                               record))
            try:
                ctx.stream.path.unlink()
            except OSError:
                pass
        if not had_fragments:
            return
        if not isinstance(self.parent_stream, telemetry_mod.TelemetryStream):
            return
        for _, record in sorted(staged, key=lambda item: item[0]):
            self.parent_stream.append_raw(record)
        self.parent_stream.emit("shard_join", label=self.label,
                                shards=self.shards, events=len(staged))


def fork_observability(shards: int, label: str = "fork") -> ObsFork:
    """Create an :class:`ObsFork` with ``shards`` child contexts.

    Use as a context manager (``with fork_observability(4) as fork:``)
    or pair it manually with :func:`merge_on_join`.
    """
    return ObsFork(shards, label=label)


def merge_on_join(fork: ObsFork) -> Dict[str, object]:
    """Merge a fork's children back into the ambient stack (idempotent).

    Equivalent to leaving the ``with`` block, for callers that manage
    the fork by hand; returns the per-shard timing digest.
    """
    return fork.merge()


@shard_safe(
    merges=("obs.metrics.registry", "obs.tracing.tracer"),
    owns=("obs.events.log", "obs.telemetry.stream"),
    io=True,
    note="forks the obs stack per worker thread and merges it "
         "deterministically on join; io is the per-worker stream fragments",
)
def run_sharded(fn: Callable, items: Iterable, shards: Optional[int] = None,
                label: str = "pool") -> List:
    """Run ``fn(item)`` over ``items`` on a sharded worker pool.

    Item ``j`` goes to shard ``j % shards``; results return in original
    item order regardless of completion order, and observability forks
    per worker and merges on join (counters/histograms are commutative
    and the merge runs in shard order, so the merged state is
    scheduler-independent).  ``shards`` clamps to the item count;
    ``shards <= 1`` degrades to a plain serial loop with no fork.  A
    worker exception propagates after the join, so the merged
    observability still describes the partial run.
    """
    items = list(items)
    if not items:
        return []
    if shards is None:
        shards = len(items)
    shards = max(1, min(int(shards), len(items)))
    if shards == 1:
        return [fn(item) for item in items]

    results: List = [None] * len(items)
    bundles = [[(j, items[j]) for j in range(i, len(items), shards)]
               for i in range(shards)]

    def worker(ctx: ShardContext, bundle) -> None:
        with ctx:
            for index, item in bundle:
                results[index] = fn(item)

    with ObsFork(shards, label=label) as fork:
        with ThreadPoolExecutor(max_workers=shards) as pool:
            futures = [pool.submit(worker, fork.contexts[i], bundles[i])
                       for i in range(shards)]
        errors = [future.exception() for future in futures]
    for error in errors:
        if error is not None:
            raise error
    return results
