"""Leveled, structured (``key=value``) event logging.

Events are flat dicts: a level, an event name, and arbitrary scalar
fields.  They fan out to *sinks*:

* :class:`JsonlSink` — one JSON object per line, for machine analysis.
* :class:`StderrSink` — human-readable ``LEVEL event k=v k=v`` lines.

With no sinks configured (the default), :meth:`EventLog.log` drops the
record before formatting anything, so instrumented hot loops cost ~one
attribute load + comparison.  Per-batch events should additionally go
through :meth:`EventLog.every` so that even with sinks attached only
every *n*-th occurrence is emitted (rate limiting)::

    events.every(50, "batch", phase="attr", loss=loss)
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Dict, List, Optional, TextIO

__all__ = [
    "DEBUG", "INFO", "WARN", "ERROR", "LEVELS",
    "EventLog", "JsonlSink", "StderrSink",
    "get_event_log", "set_event_log", "use_event_log",
    "debug", "info", "warn", "error", "every",
]

DEBUG, INFO, WARN, ERROR = 10, 20, 30, 40
LEVELS: Dict[int, str] = {DEBUG: "DEBUG", INFO: "INFO", WARN: "WARN",
                          ERROR: "ERROR"}

Sink = Callable[[Dict[str, object]], None]


def format_kv(record: Dict[str, object]) -> str:
    """``LEVEL event key=value ...`` rendering of one record."""
    level = LEVELS.get(int(record.get("level", INFO)), "INFO")
    event = record.get("event", "?")
    fields = " ".join(
        f"{k}={_scalar(v)}" for k, v in record.items()
        if k not in ("level", "event", "ts")
    )
    return f"{level:<5} {event}" + (f" {fields}" if fields else "")


def _scalar(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    return f'"{text}"' if " " in text else text


class JsonlSink:
    """Append records as JSON lines to an open stream or a path."""

    def __init__(self, target):
        if hasattr(target, "write"):
            self._stream: TextIO = target
            self._owns = False
        else:
            self._stream = open(target, "a", encoding="utf-8")
            self._owns = True

    def __call__(self, record: Dict[str, object]) -> None:
        self._stream.write(json.dumps(record, sort_keys=True,
                                      default=str) + "\n")

    def close(self) -> None:
        self._stream.flush()
        if self._owns:
            self._stream.close()


class StderrSink:
    """Human-readable sink with a minimum level."""

    def __init__(self, min_level: int = INFO, stream: Optional[TextIO] = None):
        self.min_level = min_level
        self.stream = stream

    def __call__(self, record: Dict[str, object]) -> None:
        if int(record.get("level", INFO)) < self.min_level:
            return
        stream = self.stream if self.stream is not None else sys.stderr
        stream.write(format_kv(record) + "\n")


class EventLog:
    """Dispatches structured records to zero or more sinks."""

    def __init__(self, sinks: Optional[List[Sink]] = None):
        self.sinks: List[Sink] = list(sinks or [])
        self._every_counts: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return bool(self.sinks)

    def add_sink(self, sink: Sink) -> None:
        self.sinks.append(sink)

    def log(self, level: int, event: str, **fields) -> None:
        if not self.sinks:
            return
        record: Dict[str, object] = {"ts": time.time(), "level": level,
                                     "event": event}
        record.update(fields)
        for sink in self.sinks:
            sink(record)

    def append_raw(self, record: Dict[str, object]) -> None:
        """Dispatch an already-built record, preserving its ``ts``.

        The shard join uses this to multiplex buffered per-worker
        records back into the coordinator's log with their original
        timestamps (a fresh :meth:`log` call would re-stamp them).
        """
        if not self.sinks:
            return
        for sink in self.sinks:
            sink(record)

    def debug(self, event: str, **fields) -> None:
        self.log(DEBUG, event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log(INFO, event, **fields)

    def warn(self, event: str, **fields) -> None:
        self.log(WARN, event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log(ERROR, event, **fields)

    def every(self, n: int, event: str, level: int = DEBUG, **fields) -> None:
        """Rate-limited logging: emit the 1st, then every ``n``-th call.

        Use for per-batch events so sinks see a bounded stream.  The
        occurrence index is attached as ``seq``.
        """
        if not self.sinks:
            return
        seq = self._every_counts.get(event, 0)
        self._every_counts[event] = seq + 1
        if n <= 1 or seq % n == 0:
            self.log(level, event, seq=seq, **fields)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


_NULL_LOG = EventLog()  # no sinks => every call is a cheap drop
_default: EventLog = _NULL_LOG


def get_event_log() -> EventLog:
    """The process-global event log (sink-less — a no-op — by default)."""
    return _default


def set_event_log(log: Optional[EventLog]) -> EventLog:
    """Install ``log`` globally; ``None`` restores the sink-less default.
    Returns the previously installed log."""
    global _default
    previous = _default
    _default = log if log is not None else _NULL_LOG
    return previous


class use_event_log:
    """Context manager installing ``log`` globally for the block."""

    def __init__(self, log: Optional[EventLog]):
        self.log = log
        self._previous: Optional[EventLog] = None

    def __enter__(self) -> EventLog:
        self._previous = set_event_log(self.log)
        return get_event_log()

    def __exit__(self, *exc) -> None:
        set_event_log(self._previous)


def debug(event: str, **fields) -> None:
    _default.log(DEBUG, event, **fields)


def info(event: str, **fields) -> None:
    _default.log(INFO, event, **fields)


def warn(event: str, **fields) -> None:
    _default.log(WARN, event, **fields)


def error(event: str, **fields) -> None:
    _default.log(ERROR, event, **fields)


def every(n: int, event: str, level: int = DEBUG, **fields) -> None:
    _default.every(n, event, level=level, **fields)
