"""Hierarchical span tracing (a lightweight in-process profiler).

Usage::

    from repro.obs import trace

    with trace.span("attr_pretrain/epoch", epoch=i):
        ...

Spans nest; repeated spans with the same name under the same parent are
*aggregated* into one tree node (wall time summed, call count
incremented), so per-batch spans stay bounded.  Each node records wall
time, call count, error count, the most recent attributes, and — when the
tracer was built with ``trace_alloc=True`` and :mod:`tracemalloc` is
running — the net traced-allocation delta in bytes (numpy routes array
buffers through the traced allocator, so this approximates numpy
allocation churn per span).

The tree renders as an indented text report (:meth:`Tracer.report`) and
exports as a JSON-able dict (:meth:`Tracer.to_dict`) or JSONL
(:meth:`Tracer.write_jsonl`, one node per line with a ``path``).

Like the metrics registry, the process-global tracer is a no-op
:class:`NullTracer` until observability is activated; `span()` on the
null tracer reuses a single context-manager object and costs ~nothing.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from typing import Dict, Iterator, List, Optional, TextIO, Tuple

__all__ = [
    "SpanNode", "Tracer", "NullTracer",
    "get_tracer", "set_tracer", "use_tracer", "span",
]


class SpanNode:
    """One node of the aggregated span tree."""

    __slots__ = ("name", "calls", "errors", "wall", "alloc_bytes",
                 "attrs", "children")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.errors = 0
        self.wall = 0.0
        self.alloc_bytes = 0
        self.attrs: Dict[str, object] = {}
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def merge_from(self, other: "SpanNode") -> None:
        """Aggregate ``other``'s subtree into this node.

        The same aggregation rule repeated spans already follow: calls,
        errors, wall time and allocation deltas sum; attributes are
        last-writer (``other`` wins, matching ``span(**attrs)``);
        children merge recursively by name.  Used by the shard join to
        graft per-worker trees under the forking span.
        """
        self.calls += other.calls
        self.errors += other.errors
        self.wall += other.wall
        self.alloc_bytes += other.alloc_bytes
        if other.attrs:
            self.attrs.update(other.attrs)
        for name, theirs in other.children.items():
            self.child(name).merge_from(theirs)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "calls": self.calls,
            "wall_seconds": self.wall,
        }
        if self.errors:
            out["errors"] = self.errors
        if self.alloc_bytes:
            out["alloc_bytes"] = self.alloc_bytes
        if self.attrs:
            out["attrs"] = self.attrs
        if self.children:
            out["children"] = [c.to_dict() for c in self.children.values()]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SpanNode":
        node = cls(str(data["name"]))
        node.calls = int(data.get("calls", 0))
        node.errors = int(data.get("errors", 0))
        node.wall = float(data.get("wall_seconds", 0.0))
        node.alloc_bytes = int(data.get("alloc_bytes", 0))
        node.attrs = dict(data.get("attrs", {}))  # type: ignore[arg-type]
        for child in data.get("children", []):  # type: ignore[union-attr]
            restored = cls.from_dict(child)
            node.children[restored.name] = restored
        return node

    def walk(self, path: Tuple[str, ...] = ()
             ) -> Iterator[Tuple[Tuple[str, ...], "SpanNode"]]:
        here = path + (self.name,)
        yield here, self
        for child in self.children.values():
            yield from child.walk(here)


class _LiveSpan:
    """Context manager for one entry into a (possibly aggregated) span."""

    __slots__ = ("_tracer", "_node", "_start", "_alloc_start")

    def __init__(self, tracer: "Tracer", node: SpanNode):
        self._tracer = tracer
        self._node = node
        self._start = 0.0
        self._alloc_start = 0

    def __enter__(self) -> SpanNode:
        self._tracer._stack.append(self._node)
        if self._tracer.trace_alloc and tracemalloc.is_tracing():
            self._alloc_start = tracemalloc.get_traced_memory()[0]
        self._start = time.perf_counter()
        return self._node

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        node = self._node
        node.calls += 1
        node.wall += elapsed
        if exc_type is not None:
            node.errors += 1
        if self._tracer.trace_alloc and tracemalloc.is_tracing():
            node.alloc_bytes += (
                tracemalloc.get_traced_memory()[0] - self._alloc_start
            )
        # Unwind even if callers misbehave: pop to (and including) node.
        stack = self._tracer._stack
        while stack and stack.pop() is not node:
            pass
        return False  # never swallow exceptions


class Tracer:
    """Collects an aggregated hierarchical timing tree."""

    def __init__(self, trace_alloc: bool = False):
        self.trace_alloc = trace_alloc
        self.root = SpanNode("root")
        self._stack: List[SpanNode] = [self.root]
        self._started = time.perf_counter()

    @property
    def enabled(self) -> bool:
        return True

    def span(self, name: str, **attrs) -> _LiveSpan:
        parent = self._stack[-1] if self._stack else self.root
        node = parent.child(name)
        if attrs:
            node.attrs.update(attrs)
        return _LiveSpan(self, node)

    def current(self) -> SpanNode:
        return self._stack[-1] if self._stack else self.root

    def reset(self) -> None:
        self.root = SpanNode("root")
        self._stack = [self.root]
        self._started = time.perf_counter()

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        root = self.root.to_dict()
        # The synthetic root has no timing of its own; report the sum of
        # its top-level children so "total" is meaningful.
        root["wall_seconds"] = sum(
            c.wall for c in self.root.children.values()
        )
        root["calls"] = max(root.get("calls", 0), 1)
        return root

    def write_jsonl(self, stream: TextIO) -> int:
        """Write one JSON object per tree node; returns the line count."""
        lines = 0
        for path, node in self.root.walk():
            record = node.to_dict()
            record.pop("children", None)
            record["path"] = "/".join(path)
            record["depth"] = len(path) - 1
            stream.write(json.dumps(record, sort_keys=True) + "\n")
            lines += 1
        return lines

    def report(self, min_wall: float = 0.0) -> str:
        """Indented text rendering of the span tree."""
        return format_span_tree(self.to_dict(), min_wall=min_wall)


def format_span_tree(tree: Dict[str, object], min_wall: float = 0.0) -> str:
    """Render a span-tree dict (from :meth:`Tracer.to_dict` or a run
    record) as an indented text table."""
    lines = [f"{'span':<44} {'calls':>6} {'wall(s)':>9} {'%par':>6} "
             f"{'alloc':>10}"]
    lines.append("-" * len(lines[0]))

    def fmt_bytes(n: int) -> str:
        if not n:
            return "-"
        sign = "-" if n < 0 else ""
        n = abs(n)
        for unit in ("B", "KB", "MB", "GB"):
            if n < 1024 or unit == "GB":
                return f"{sign}{n:.0f}{unit}" if unit == "B" else \
                    f"{sign}{n:.1f}{unit}"
            n /= 1024.0
        return f"{sign}{n:.1f}GB"

    def walk(node: Dict[str, object], depth: int, parent_wall: float) -> None:
        wall = float(node.get("wall_seconds", 0.0))
        if depth and wall < min_wall:
            return
        name = "  " * depth + str(node.get("name", "?"))
        calls = int(node.get("calls", 0))
        pct = 100.0 * wall / parent_wall if parent_wall > 0 else 100.0
        alloc = fmt_bytes(int(node.get("alloc_bytes", 0)))
        errors = int(node.get("errors", 0))
        suffix = f"  !{errors}err" if errors else ""
        lines.append(
            f"{name:<44} {calls:>6} {wall:>9.3f} {pct:>5.1f}% "
            f"{alloc:>10}{suffix}"
        )
        for child in node.get("children", []):  # type: ignore[union-attr]
            walk(child, depth + 1, wall)

    walk(tree, 0, float(tree.get("wall_seconds", 0.0)))
    return "\n".join(lines)


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """No-op tracer — the default until observability is activated."""

    def __init__(self):
        super().__init__(trace_alloc=False)

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, **attrs) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def report(self, min_wall: float = 0.0) -> str:
        return "(tracing disabled)"


_NULL_TRACER = NullTracer()
_default: Tracer = _NULL_TRACER


def get_tracer() -> Tracer:
    """The process-global tracer (no-op until obs is activated)."""
    return _default


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` globally; ``None`` restores the no-op tracer.
    Returns the previously installed tracer."""
    global _default
    previous = _default
    _default = tracer if tracer is not None else _NULL_TRACER
    return previous


class use_tracer:
    """Context manager installing ``tracer`` globally for the block."""

    def __init__(self, tracer: Optional[Tracer]):
        self.tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return get_tracer()

    def __exit__(self, *exc) -> None:
        set_tracer(self._previous)


def span(name: str, **attrs):
    """Open a span on the current global tracer (no-op when disabled)."""
    return _default.span(name, **attrs)
