"""Declarative health rules evaluated online against the telemetry stream.

A rule is a one-line expression naming a *metric*, a *check*, and
optional parameters::

    loss.nonfinite                       # NaN/Inf loss         -> fail
    grad_norm.spike(factor=10)           # 10x the running median -> warn
    hits@1.drop(vs=baseline, abs=0.02)   # 2pt drop vs last run  -> fail
    epoch_seconds.trend(slope>0.05)      # epochs getting slower -> warn
    loss.above(value=5.0)                # hard bound            -> warn

Rules come from three places, merged in order: the engine defaults
(:data:`DEFAULT_RULES`), ``SDEAConfig.health_rules`` on the method being
run, and a TOML file (``repro run --health-rules rules.toml``, see
:func:`load_rules_toml`).  Any rule accepts a trailing
``severity=warn|fail`` override.

The :class:`HealthEngine` consumes the flat event dicts the stream
emits (:mod:`repro.obs.telemetry`), keeps per-(metric, phase) history,
and fires :class:`Alert` objects.  Alerts are themselves observable:
they are appended to the stream as ``alert`` events and counted in the
``health.alerts`` metric (labeled by severity and rule), and each alert
carries an :class:`~repro.analysis.anomaly.OpProvenance`-compatible
provenance string (``phase/epoch`` context, or the originating op's
creation stack when converted from an
:class:`~repro.analysis.anomaly.AnomalyError`).  Under
``repro run --health-gate`` any ``fail`` alert makes the process exit
nonzero.
"""

from __future__ import annotations

import math
import re
import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from . import metrics as metrics_mod

__all__ = [
    "CHECKS", "DEFAULT_RULES", "RuleError",
    "HealthRule", "Alert", "HealthEngine",
    "parse_rule", "parse_rules", "load_rules_toml", "format_rule_table",
]

#: Severity levels, mirroring the event-log vocabulary.
WARN, FAIL = "warn", "fail"

#: Default severity per check kind (overridable per rule).
_DEFAULT_SEVERITY = {
    "nonfinite": FAIL,
    "drop": FAIL,
    "spike": WARN,
    "trend": WARN,
    "above": WARN,
    "below": WARN,
}

CHECKS = tuple(sorted(_DEFAULT_SEVERITY))

#: Rules installed by ``--health-gate`` when nothing else is configured.
DEFAULT_RULES: Tuple[str, ...] = (
    "loss.nonfinite",
    "grad_norm.nonfinite",
    "grad_norm.spike(factor=10)",
)

#: Where each rule metric is read from: ``metric -> ((event, field), ...)``.
#: Metrics not listed fall back to "any event carrying a field of the
#: same name" so rules can target ad-hoc emitted fields.
METRIC_SOURCES: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "loss": (("epoch", "loss"),),
    "grad_norm": (("epoch", "grad_norm"),),
    "epoch_seconds": (("epoch", "seconds"),),
    "lr": (("epoch", "lr"),),
    "hits@1": (("validation", "hits1"), ("eval", "hits_at_1"),
               ("run_end", "hits_at_1")),
    "hits@10": (("eval", "hits_at_10"), ("run_end", "hits_at_10")),
    "mrr": (("eval", "mrr"), ("run_end", "mrr")),
}


class RuleError(ValueError):
    """A health rule that does not parse or references an unknown check."""


_RULE_RE = re.compile(
    r"^\s*(?P<metric>[A-Za-z0-9_.@]+?)\.(?P<check>[a-z_]+)"
    r"(?:\((?P<args>[^)]*)\))?\s*$"
)

_ARG_RE = re.compile(
    r"^\s*(?P<key>[A-Za-z_][A-Za-z0-9_]*)\s*(?P<op>[=<>])\s*(?P<value>.+?)\s*$"
)


@dataclass(frozen=True)
class HealthRule:
    """One parsed rule: metric + check + params + severity."""

    metric: str
    check: str
    params: Tuple[Tuple[str, object], ...] = ()
    severity: str = WARN
    text: str = ""

    def param(self, key: str, default=None):
        for k, v in self.params:
            if k == key:
                return v
        return default


def _coerce(value: str) -> object:
    text = value.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text.strip("'\"")


def parse_rule(text: str) -> HealthRule:
    """Parse one rule expression; raises :class:`RuleError` on bad input.

    The argument mini-grammar accepts ``key=value`` pairs plus the
    comparison sugar ``slope>0.05`` / ``slope<0`` (stored as the value
    with the direction recorded in ``<key>_op``).
    """
    match = _RULE_RE.match(text)
    if not match:
        raise RuleError(
            f"cannot parse health rule {text!r} "
            "(expected metric.check or metric.check(key=value, ...))"
        )
    metric = match.group("metric")
    check = match.group("check")
    if check not in _DEFAULT_SEVERITY:
        raise RuleError(
            f"unknown health check {check!r} in rule {text!r}; "
            f"choose from {', '.join(CHECKS)}"
        )
    params: List[Tuple[str, object]] = []
    severity = _DEFAULT_SEVERITY[check]
    args = match.group("args")
    if args and args.strip():
        for part in args.split(","):
            arg = _ARG_RE.match(part)
            if not arg:
                raise RuleError(
                    f"cannot parse argument {part.strip()!r} "
                    f"in rule {text!r}"
                )
            key, op, value = (arg.group("key"), arg.group("op"),
                              arg.group("value"))
            if key == "severity":
                severity = str(_coerce(value))
                if severity not in (WARN, FAIL):
                    raise RuleError(
                        f"severity must be 'warn' or 'fail' in {text!r}"
                    )
                continue
            params.append((key, _coerce(value)))
            if op in "<>":
                params.append((key + "_op", op))
    return HealthRule(metric=metric, check=check, params=tuple(params),
                      severity=severity, text=text.strip())


def parse_rules(texts: Sequence[str]) -> List[HealthRule]:
    """Parse several rule expressions, de-duplicating identical texts."""
    seen = set()
    out: List[HealthRule] = []
    for text in texts:
        rule = parse_rule(text)
        if rule.text not in seen:
            seen.add(rule.text)
            out.append(rule)
    return out


def load_rules_toml(path) -> List[HealthRule]:
    """Load rules from a TOML file with a top-level ``rules`` array::

        rules = [
          "loss.nonfinite",
          "hits@1.drop(vs=baseline, abs=0.02, severity=fail)",
        ]
    """
    import tomllib

    data = tomllib.loads(Path(path).read_text(encoding="utf-8"))
    texts = data.get("rules", [])
    if not isinstance(texts, list) or not all(
            isinstance(t, str) for t in texts):
        raise RuleError(f"{path}: expected a top-level 'rules' string array")
    return parse_rules(texts)


def format_rule_table() -> str:
    """The check vocabulary as a text table (``repro obs rules`` / docs)."""
    rows = [
        ("nonfinite", "value is NaN or +/-Inf", "-", FAIL),
        ("spike", "value > factor x running median (needs history >= 3)",
         "factor=10", WARN),
        ("drop", "baseline - value > abs (or rel fraction of baseline)",
         "vs=baseline|best, abs=0.02, rel=0.1", FAIL),
        ("trend", "least-squares slope of history crosses the bound",
         "slope>0.05, window=8", WARN),
        ("above", "value > bound", "value=...", WARN),
        ("below", "value < bound", "value=...", WARN),
    ]
    lines = [f"{'check':<10} {'fires when':<52} {'params':<36} default",
             "-" * 110]
    for check, fires, params, severity in rows:
        lines.append(f"{check:<10} {fires:<52} {params:<36} {severity}")
    return "\n".join(lines)


@dataclass
class Alert:
    """One fired health alert, ready for streaming and gating."""

    rule: str
    severity: str
    metric: str
    value: Optional[float]
    message: str
    provenance: str = ""
    phase: Optional[str] = None
    epoch: Optional[int] = None

    def to_fields(self) -> Dict[str, object]:
        fields: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity,
            "metric": self.metric,
            "message": self.message,
        }
        if self.value is not None:
            fields["value"] = self.value
        if self.provenance:
            fields["provenance"] = self.provenance
        if self.phase is not None:
            fields["phase"] = self.phase
        if self.epoch is not None:
            fields["epoch"] = self.epoch
        return fields

    def format(self) -> str:
        where = self.provenance or "?"
        return (f"[{self.severity.upper()}] {self.rule}: {self.message} "
                f"(at {where})")


class HealthEngine:
    """Evaluates parsed rules against the live event stream.

    Parameters
    ----------
    rules:
        Parsed :class:`HealthRule` objects (see :func:`parse_rules`).
    baseline:
        ``metric -> value`` map for ``drop(vs=baseline)`` rules —
        typically the headline results of the latest prior run record
        for the same method/dataset (see
        :func:`repro.obs.compare.baseline_metrics`).
    registry:
        Metrics registry receiving the ``health.alerts`` counter; the
        process-global one by default so alerts land in the same
        snapshot stream they police.
    """

    def __init__(self, rules: Sequence[HealthRule],
                 baseline: Optional[Dict[str, float]] = None,
                 registry: Optional[metrics_mod.Registry] = None):
        self.rules = list(rules)
        self.baseline = dict(baseline or {})
        self._registry = registry
        self.alerts: List[Alert] = []
        # (metric, phase) -> value history, in arrival order.
        self._history: Dict[Tuple[str, str], List[float]] = {}
        # (rule text, metric, phase) -> already fired (one alert per
        # site, so a NaN loss does not fire once per remaining epoch).
        self._fired: Dict[Tuple[str, str, str], bool] = {}
        self._best: Dict[Tuple[str, str], float] = {}

    # ------------------------------------------------------------------ #
    # Event intake
    # ------------------------------------------------------------------ #
    def observe(self, event: Dict[str, object]) -> List[Alert]:
        """Feed one stream event; returns any newly fired alerts."""
        fired: List[Alert] = []
        kind = event.get("event")
        phase = str(event.get("phase", ""))
        for rule in self.rules:
            value = _extract(rule.metric, kind, event)
            if value is None:
                continue
            key = (rule.metric, phase)
            history = self._history.setdefault(key, [])
            alert = self._evaluate(rule, value, history, phase, event)
            history.append(value)
            if math.isfinite(value):
                best = self._best.get(key)
                if best is None or value > best:
                    self._best[key] = value
            if alert is not None:
                site = (rule.text, rule.metric, phase)
                if not self._fired.get(site):
                    self._fired[site] = True
                    self.alerts.append(alert)
                    fired.append(alert)
                    self._count(alert)
        return fired

    def note_anomaly(self, exc) -> Alert:
        """Convert an :class:`~repro.analysis.anomaly.AnomalyError` into a
        ``fail`` alert carrying the originating op's provenance."""
        provenance = ""
        if getattr(exc, "provenance", None) is not None:
            provenance = exc.provenance.format()
        alert = Alert(
            rule="anomaly.nonfinite",
            severity=FAIL,
            metric="anomaly",
            value=None,
            message=str(exc),
            provenance=provenance or f"{getattr(exc, 'phase', '?')} pass",
        )
        self.alerts.append(alert)
        self._count(alert)
        return alert

    def _count(self, alert: Alert) -> None:
        registry = self._registry
        if registry is None:
            registry = metrics_mod.get_registry()
        registry.counter("health.alerts").inc(
            severity=alert.severity, rule=alert.rule
        )

    # ------------------------------------------------------------------ #
    # Checks
    # ------------------------------------------------------------------ #
    def _evaluate(self, rule: HealthRule, value: float,
                  history: List[float], phase: str,
                  event: Dict[str, object]) -> Optional[Alert]:
        check = rule.check
        message: Optional[str] = None

        if check == "nonfinite":
            if not math.isfinite(value):
                message = f"{rule.metric} = {value} is not finite"
        elif check == "spike":
            factor = float(rule.param("factor", 10.0))
            finite = [v for v in history if math.isfinite(v)]
            if len(finite) >= 3 and math.isfinite(value):
                median = statistics.median(finite)
                if median > 0 and value > factor * median:
                    message = (f"{rule.metric} = {value:.4g} is "
                               f"{value / median:.1f}x the running median "
                               f"{median:.4g} (limit {factor:g}x)")
        elif check == "drop":
            reference = self._drop_reference(rule, phase)
            if reference is not None and math.isfinite(value):
                abs_drop = rule.param("abs")
                rel_drop = rule.param("rel")
                drop = reference - value
                if abs_drop is not None and drop > float(abs_drop):
                    message = (f"{rule.metric} = {value:.4g} dropped "
                               f"{drop:.4g} below "
                               f"{rule.param('vs', 'baseline')} "
                               f"{reference:.4g} (limit {float(abs_drop):g})")
                elif (rel_drop is not None and reference != 0
                        and drop / abs(reference) > float(rel_drop)):
                    message = (f"{rule.metric} = {value:.4g} dropped "
                               f"{drop / abs(reference):.1%} below "
                               f"{rule.param('vs', 'baseline')} "
                               f"{reference:.4g} "
                               f"(limit {float(rel_drop):.0%})")
        elif check == "trend":
            window = int(rule.param("window", 8))
            bound = rule.param("slope")
            direction = rule.param("slope_op", ">")
            finite = [v for v in history if math.isfinite(v)]
            if bound is not None and len(finite) + 1 >= max(window, 3):
                series = (finite + [value])[-window:]
                slope = _ols_slope(series)
                crossed = (slope > float(bound) if direction == ">"
                           else slope < float(bound))
                if crossed:
                    message = (f"{rule.metric} slope {slope:.4g}/epoch "
                               f"crossed {direction}{float(bound):g} "
                               f"over the last {len(series)} epochs")
        elif check == "above":
            bound = rule.param("value")
            if bound is not None and value > float(bound):
                message = (f"{rule.metric} = {value:.4g} above "
                           f"{float(bound):g}")
        elif check == "below":
            bound = rule.param("value")
            if bound is not None and value < float(bound):
                message = (f"{rule.metric} = {value:.4g} below "
                           f"{float(bound):g}")

        if message is None:
            return None
        epoch = event.get("epoch")
        provenance = _provenance(event, rule.metric)
        return Alert(
            rule=rule.text, severity=rule.severity, metric=rule.metric,
            value=value if math.isfinite(value) else None, message=message,
            provenance=provenance, phase=phase or None,
            epoch=epoch if isinstance(epoch, int) else None,
        )

    def _drop_reference(self, rule: HealthRule, phase: str
                        ) -> Optional[float]:
        source = str(rule.param("vs", "baseline"))
        if source == "best":
            return self._best.get((rule.metric, phase))
        value = self.baseline.get(rule.metric)
        return float(value) if value is not None else None

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    @property
    def failed(self) -> bool:
        return any(a.severity == FAIL for a in self.alerts)

    def alert_counts(self) -> Dict[str, int]:
        return {
            "alerts_warn": sum(1 for a in self.alerts if a.severity == WARN),
            "alerts_fail": sum(1 for a in self.alerts if a.severity == FAIL),
        }

    def summary(self) -> Dict[str, object]:
        """The JSON-able health digest stored in the run record."""
        return {
            "rules": [rule.text for rule in self.rules],
            **self.alert_counts(),
            "alerts": [alert.to_fields() for alert in self.alerts],
        }


def _ols_slope(series: Sequence[float]) -> float:
    """Least-squares slope of ``series`` against its index."""
    n = len(series)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2.0
    mean_y = sum(series) / n
    num = sum((i - mean_x) * (y - mean_y) for i, y in enumerate(series))
    den = sum((i - mean_x) ** 2 for i in range(n))
    return num / den if den else 0.0


def _extract(metric: str, kind: object, event: Dict[str, object]
             ) -> Optional[float]:
    """The rule metric's value in this event, or None when absent."""
    sources = METRIC_SOURCES.get(metric)
    if sources is not None:
        for event_name, field_name in sources:
            if kind == event_name and field_name in event:
                return _as_float(event[field_name])
        return None
    if metric in event and kind not in ("alert", "metrics_snapshot"):
        return _as_float(event[metric])
    return None


def _as_float(value: object) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _provenance(event: Dict[str, object], metric: str) -> str:
    """``phase/epoch`` context string for an alert (anomaly-style)."""
    parts: List[str] = []
    phase = event.get("phase")
    if phase:
        parts.append(f"phase={phase}")
    epoch = event.get("epoch")
    if epoch is not None:
        parts.append(f"epoch={epoch}")
    kind = event.get("event")
    if kind:
        parts.append(f"event={kind}")
    parts.append(f"metric={metric}")
    return " ".join(parts)
