"""WordPiece-style subword tokenizer with an in-repo BPE trainer.

The paper relies on a pre-trained BERT whose subword tokenizer makes rare
words decomposable into shared pieces ("BERT uses a subword-based
tokenization strategy to deal with rare words").  This module reproduces
that behaviour: a byte-pair-encoding trainer learns merges from a corpus,
and encoding uses greedy longest-match WordPiece segmentation with the
``##`` continuation convention.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from .vocab import Vocab

_WORD_RE = re.compile(r"[\w']+|[^\w\s]", re.UNICODE)


def normalize(text: str) -> str:
    """Lowercase and squeeze whitespace (BERT uncased-style)."""
    return " ".join(str(text).lower().split())


def pretokenize(text: str) -> List[str]:
    """Split normalised text into words and punctuation marks."""
    return _WORD_RE.findall(normalize(text))


def _word_pieces_seed(word: str) -> Tuple[str, ...]:
    """Initial segmentation of a word into characters, ## after the first."""
    if not word:
        return ()
    return (word[0],) + tuple("##" + ch for ch in word[1:])


def _merge_symbol(a: str, b: str) -> str:
    """Concatenate two pieces, dropping the continuation prefix of ``b``."""
    return a + (b[2:] if b.startswith("##") else b)


class WordPieceTokenizer:
    """Subword tokenizer trained with BPE merges, encoded WordPiece-style.

    Typical usage::

        tokenizer = WordPieceTokenizer.train(corpus, vocab_size=2000)
        ids, mask = tokenizer.encode("Fabian Wendelin Bruskewitz", max_len=32)
    """

    def __init__(self, vocab: Vocab, merges: Sequence[Tuple[str, str]] = ()):
        self.vocab = vocab
        self.merges = list(merges)
        self._encode_cache: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    @classmethod
    def train(cls, corpus: Iterable[str], vocab_size: int = 2000,
              min_pair_count: int = 2) -> "WordPieceTokenizer":
        """Learn a subword vocabulary from raw text lines.

        Parameters
        ----------
        corpus:
            Iterable of text lines (attribute values, names, sentences).
        vocab_size:
            Target total vocabulary size including special tokens and
            single characters.
        min_pair_count:
            Stop merging when the best pair occurs fewer times than this.
        """
        word_counts: Counter = Counter()
        for line in corpus:
            word_counts.update(pretokenize(line))

        # Seed vocab with all single characters (and their ## variants).
        vocab = Vocab()
        segmentations: Dict[str, List[str]] = {}
        for word in word_counts:
            pieces = list(_word_pieces_seed(word))
            segmentations[word] = pieces
            for piece in pieces:
                vocab.add(piece)

        merges: List[Tuple[str, str]] = []
        while len(vocab) < vocab_size:
            pair_counts: Counter = Counter()
            for word, pieces in segmentations.items():
                count = word_counts[word]
                for a, b in zip(pieces, pieces[1:]):
                    pair_counts[(a, b)] += count
            if not pair_counts:
                break
            (best_a, best_b), best_count = pair_counts.most_common(1)[0]
            if best_count < min_pair_count:
                break
            merged = _merge_symbol(best_a, best_b)
            merges.append((best_a, best_b))
            vocab.add(merged)
            for word, pieces in segmentations.items():
                segmentations[word] = _apply_merge(pieces, best_a, best_b, merged)
        return cls(vocab, merges)

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def tokenize_word(self, word: str) -> List[str]:
        """Greedy longest-match WordPiece segmentation of one word."""
        cached = self._encode_cache.get(word)
        if cached is not None:
            return list(cached)
        pieces: List[str] = []
        start = 0
        n = len(word)
        while start < n:
            end = n
            piece = None
            while end > start:
                candidate = word[start:end]
                if start > 0:
                    candidate = "##" + candidate
                if candidate in self.vocab:
                    piece = candidate
                    break
                end -= 1
            if piece is None:
                pieces = ["[UNK]"]
                break
            pieces.append(piece)
            start = end
        self._encode_cache[word] = pieces
        return list(pieces)

    def tokenize(self, text: str) -> List[str]:
        """Tokenize raw text into subword pieces."""
        tokens: List[str] = []
        for word in pretokenize(text):
            tokens.extend(self.tokenize_word(word))
        return tokens

    def encode(self, text: str, max_len: int,
               add_cls: bool = True) -> Tuple[List[int], List[bool]]:
        """Encode text to fixed-length ids plus an attention mask.

        Prepends ``[CLS]`` (paper Eq. 5), truncates to ``max_len`` and pads
        with ``[PAD]``.

        Returns
        -------
        (ids, mask):
            ``ids`` has length ``max_len``; ``mask[i]`` is True for real
            tokens and False for padding.
        """
        tokens = self.tokenize(text)
        if add_cls:
            tokens = ["[CLS]"] + tokens
        tokens = tokens[:max_len]
        ids = [self.vocab.id_of(t) for t in tokens]
        mask = [True] * len(ids)
        while len(ids) < max_len:
            ids.append(self.vocab.pad_id)
            mask.append(False)
        return ids, mask

    def decode(self, ids: Sequence[int]) -> str:
        """Best-effort inverse of :meth:`tokenize` (for debugging)."""
        words: List[str] = []
        for token_id in ids:
            token = self.vocab.token_of(int(token_id))
            if token in ("[PAD]", "[CLS]", "[SEP]"):
                continue
            if token.startswith("##") and words:
                words[-1] += token[2:]
            else:
                words.append(token)
        return " ".join(words)

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serialisable representation (tokens in id order + merges)."""
        return {
            "tokens": self.vocab.tokens,
            "merges": [list(pair) for pair in self.merges],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WordPieceTokenizer":
        """Inverse of :meth:`to_dict`."""
        from .vocab import SPECIAL_TOKENS
        tokens = payload["tokens"]
        if tuple(tokens[:len(SPECIAL_TOKENS)]) != SPECIAL_TOKENS:
            raise ValueError("serialised vocab missing special tokens")
        vocab = Vocab(tokens[len(SPECIAL_TOKENS):])
        merges = [tuple(pair) for pair in payload.get("merges", [])]
        return cls(vocab, merges)


def _apply_merge(pieces: List[str], a: str, b: str, merged: str) -> List[str]:
    """Replace adjacent (a, b) occurrences in a segmentation by ``merged``."""
    out: List[str] = []
    i = 0
    while i < len(pieces):
        if i + 1 < len(pieces) and pieces[i] == a and pieces[i + 1] == b:
            out.append(merged)
            i += 2
        else:
            out.append(pieces[i])
            i += 1
    return out
