"""LSA (latent semantic analysis) token vectors and IDF statistics.

Substitution rationale: the paper's attribute module starts from a
*pre-trained* BERT whose token embeddings already encode distributional
semantics, and whose attention learns to emphasise informative tokens.
With no downloadable weights, we pre-train those two properties directly
from the corpus at hand:

* token embeddings are initialised with **truncated-SVD vectors of the
  IDF-weighted document–term matrix** (classic LSA) — tokens that co-occur
  across attribute sequences get nearby vectors;
* pooling uses **IDF weights**, the statistical analogue of attention
  down-weighting stopwords.

Both are computed once from the tokenised corpus and are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CorpusStats:
    """IDF weights plus LSA token vectors for a tokenised corpus."""

    idf: np.ndarray            # (vocab_size,)
    token_vectors: np.ndarray  # (vocab_size, dim), unit rows


def document_term_matrix(ids: np.ndarray, mask: np.ndarray,
                         vocab_size: int) -> np.ndarray:
    """Dense (n_docs × vocab) count matrix from padded token-id batches."""
    n_docs = len(ids)
    matrix = np.zeros((n_docs, vocab_size))
    rows = np.repeat(np.arange(n_docs), ids.shape[1])
    flat_ids = ids.reshape(-1)
    flat_mask = mask.reshape(-1)
    np.add.at(matrix, (rows[flat_mask], flat_ids[flat_mask]), 1.0)
    return matrix


def inverse_document_frequency(matrix: np.ndarray) -> np.ndarray:
    """Smoothed IDF per token: ``log((N+1)/(df+1)) + 1``."""
    n_docs = matrix.shape[0]
    df = (matrix > 0).sum(axis=0)
    return np.log((n_docs + 1.0) / (df + 1.0)) + 1.0


def lsa_token_vectors(matrix: np.ndarray, idf: np.ndarray,
                      dim: int) -> np.ndarray:
    """Truncated-SVD token vectors of the IDF-weighted matrix.

    Rows are L2-normalised; tokens never observed in the corpus (e.g.
    unused special tokens) receive zero vectors.
    """
    weighted = matrix * idf[None, :]
    # SVD of (docs × vocab); right singular vectors give token directions.
    _, singular, vt = np.linalg.svd(weighted, full_matrices=False)
    k = min(dim, len(singular))
    vectors = vt[:k].T * np.sqrt(singular[:k])[None, :]
    if k < dim:
        vectors = np.pad(vectors, ((0, 0), (0, dim - k)))
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    observed = matrix.sum(axis=0) > 0
    vectors = np.where(
        observed[:, None], vectors / np.maximum(norms, 1e-12), 0.0
    )
    return vectors


def corpus_stats(ids: np.ndarray, mask: np.ndarray, vocab_size: int,
                 dim: int) -> CorpusStats:
    """One-call IDF + LSA computation for a tokenised corpus."""
    matrix = document_term_matrix(ids, mask, vocab_size)
    idf = inverse_document_frequency(matrix)
    return CorpusStats(idf=idf, token_vectors=lsa_token_vectors(matrix, idf, dim))
