"""Masked-language-model pre-training for MiniBert.

The paper fine-tunes a *pre-trained* BERT; since no pre-trained weights can
be downloaded in this environment, we pre-train MiniBert in-repo on a
corpus drawn from the knowledge graphs' attribute values (plus any extra
text the caller supplies).  This gives the attribute-embedding module the
property it needs: tokens that co-occur or share subwords produce nearby
[CLS] representations before any alignment supervision is seen.

Masking follows BERT: 15% of tokens are selected; of these 80% become
``[MASK]``, 10% a random token, 10% stay unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from ..nn import Adam, clip_grad_norm
from ..nn import functional as F
from ..obs import events, metrics, telemetry, trace
from .bert import BertConfig, BertForMaskedLM
from .tokenizer import WordPieceTokenizer

IGNORE_INDEX = -100


@dataclass
class PretrainConfig:
    """Hyper-parameters for MLM pre-training."""

    epochs: int = 3
    batch_size: int = 16
    lr: float = 1e-3
    mask_prob: float = 0.15
    max_len: int = 32
    max_grad_norm: float = 5.0
    seed: int = 13


def mask_tokens(ids: np.ndarray, attention: np.ndarray, mask_id: int,
                vocab_size: int, rng: np.random.Generator,
                mask_prob: float = 0.15) -> tuple[np.ndarray, np.ndarray]:
    """Apply BERT's 80/10/10 masking.

    Returns ``(corrupted_ids, labels)`` where ``labels`` is the original
    token at masked positions and :data:`IGNORE_INDEX` elsewhere.  Position
    0 ([CLS]) and padding are never masked.
    """
    ids = np.array(ids, copy=True)
    labels = np.full_like(ids, IGNORE_INDEX)
    candidates = attention.copy()
    candidates[:, 0] = False  # never mask [CLS]
    selection = (rng.random(ids.shape) < mask_prob) & candidates
    labels[selection] = ids[selection]

    roll = rng.random(ids.shape)
    replace_mask = selection & (roll < 0.8)
    random_mask = selection & (roll >= 0.8) & (roll < 0.9)
    ids[replace_mask] = mask_id
    # random tokens drawn from the non-special range
    n_random = int(random_mask.sum())
    if n_random:
        ids[random_mask] = rng.integers(5, vocab_size, size=n_random)
    return ids, labels


def pretrain_mlm(model: BertForMaskedLM, tokenizer: WordPieceTokenizer,
                 corpus: Sequence[str], config: PretrainConfig,
                 log: list | None = None) -> List[float]:
    """Pre-train ``model`` on ``corpus`` lines; return per-epoch mean losses."""
    rng = np.random.default_rng(config.seed)
    texts = [line for line in corpus if line.strip()]
    if not texts:
        raise ValueError("pre-training corpus is empty")
    optimizer = Adam(model.parameters(), lr=config.lr)
    vocab = tokenizer.vocab
    epoch_losses: List[float] = []

    model.train()
    for epoch in range(config.epochs):
        epoch_start = time.perf_counter()
        with trace.span("mlm/epoch", epoch=epoch):
            order = rng.permutation(len(texts))
            losses: List[float] = []
            for start in range(0, len(order), config.batch_size):
                with trace.span("batch"):
                    batch_texts = [
                        texts[i]
                        for i in order[start:start + config.batch_size]
                    ]
                    ids = np.empty((len(batch_texts), config.max_len),
                                   dtype=np.int64)
                    attention = np.empty((len(batch_texts), config.max_len),
                                         dtype=bool)
                    for row, text in enumerate(batch_texts):
                        row_ids, row_mask = tokenizer.encode(text,
                                                             config.max_len)
                        ids[row] = row_ids
                        attention[row] = row_mask
                    corrupted, labels = mask_tokens(
                        ids, attention, vocab.mask_id, len(vocab), rng,
                        config.mask_prob
                    )
                    if (labels == IGNORE_INDEX).all():
                        continue
                    logits = model(corrupted, attention)
                    flat_logits = logits.reshape(-1, len(vocab))
                    loss = F.cross_entropy(flat_logits, labels.reshape(-1),
                                           ignore_index=IGNORE_INDEX)
                    optimizer.zero_grad()
                    loss.backward()
                    clip_grad_norm(model.parameters(), config.max_grad_norm)
                    optimizer.step()
                    losses.append(loss.item())
                events.every(50, "batch", phase="mlm", loss=losses[-1]
                             if losses else float("nan"))
        mean_loss = float(np.mean(losses)) if losses else float("nan")
        epoch_losses.append(mean_loss)
        metrics.counter("trainer.epochs").inc(phase="mlm")
        metrics.gauge("trainer.loss").set(mean_loss, phase="mlm")
        # One labeled series per epoch => the loss curve survives in the
        # registry snapshot (and therefore in run records).
        metrics.gauge("mlm.loss_curve").set(mean_loss, epoch=epoch)
        epoch_seconds = time.perf_counter() - epoch_start
        metrics.histogram("trainer.epoch_seconds").observe(
            epoch_seconds, phase="mlm"
        )
        events.debug("epoch", phase="mlm", epoch=epoch, loss=mean_loss)
        telemetry.emit("epoch", phase="mlm", epoch=epoch, loss=mean_loss,
                       seconds=epoch_seconds, lr=config.lr)
        if log is not None:
            log.append(mean_loss)
    model.eval()
    return epoch_losses


def build_pretrained_bert(corpus: Iterable[str], bert_config: BertConfig | None = None,
                          pretrain_config: PretrainConfig | None = None,
                          vocab_size: int = 1200, seed: int = 13
                          ) -> tuple[BertForMaskedLM, WordPieceTokenizer]:
    """Train tokenizer + MLM from a corpus; the one-call pre-training path.

    Returns the trained MLM wrapper (whose ``.bert`` is the encoder SDEA
    fine-tunes) and the tokenizer.
    """
    corpus = list(corpus)
    tokenizer = WordPieceTokenizer.train(corpus, vocab_size=vocab_size)
    if bert_config is None:
        bert_config = BertConfig(vocab_size=tokenizer.vocab_size)
    if pretrain_config is None:
        pretrain_config = PretrainConfig(seed=seed)
    rng = np.random.default_rng(seed)
    model = BertForMaskedLM(bert_config, rng)
    pretrain_mlm(model, tokenizer, corpus, pretrain_config)
    return model, tokenizer
