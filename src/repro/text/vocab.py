"""Vocabulary with the BERT special tokens.

Token ids are stable across save/load and insertion order; special tokens
always occupy the first five slots so model embeddings can rely on them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
MASK_TOKEN = "[MASK]"

SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, SEP_TOKEN, MASK_TOKEN)


class Vocab:
    """Bidirectional token ↔ id mapping.

    The five BERT special tokens are inserted first automatically; further
    tokens get consecutive ids in insertion order.
    """

    def __init__(self, tokens: Iterable[str] = ()):
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        for token in SPECIAL_TOKENS:
            self.add(token)
        for token in tokens:
            self.add(token)

    def add(self, token: str) -> int:
        """Add a token (idempotent); return its id."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    def id_of(self, token: str) -> int:
        """Return the token's id, or the [UNK] id for unknown tokens."""
        return self._token_to_id.get(token, self.unk_id)

    def token_of(self, token_id: int) -> str:
        return self._id_to_token[token_id]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @property
    def cls_id(self) -> int:
        return self._token_to_id[CLS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP_TOKEN]

    @property
    def mask_id(self) -> int:
        return self._token_to_id[MASK_TOKEN]

    @property
    def tokens(self) -> List[str]:
        """All tokens in id order (copy)."""
        return list(self._id_to_token)
