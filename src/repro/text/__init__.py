"""Language-model substrate: tokenizer, MiniBert, MLM pre-training.

Replaces HuggingFace Transformers in this reproduction (see DESIGN.md
substitution table).
"""

from .bert import BertConfig, BertForMaskedLM, MiniBert, encode_batch
from .pretrain import (
    IGNORE_INDEX,
    PretrainConfig,
    build_pretrained_bert,
    mask_tokens,
    pretrain_mlm,
)
from .tokenizer import WordPieceTokenizer, normalize, pretokenize
from .vocab import (
    CLS_TOKEN,
    MASK_TOKEN,
    PAD_TOKEN,
    SEP_TOKEN,
    SPECIAL_TOKENS,
    UNK_TOKEN,
    Vocab,
)

__all__ = [
    "Vocab", "SPECIAL_TOKENS",
    "PAD_TOKEN", "UNK_TOKEN", "CLS_TOKEN", "SEP_TOKEN", "MASK_TOKEN",
    "WordPieceTokenizer", "normalize", "pretokenize",
    "BertConfig", "MiniBert", "BertForMaskedLM", "encode_batch",
    "PretrainConfig", "pretrain_mlm", "mask_tokens", "build_pretrained_bert",
    "IGNORE_INDEX",
]
