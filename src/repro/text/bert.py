"""MiniBert: a small BERT-style masked language model.

Substitutes for the HuggingFace pre-trained BERT used by the paper's
attribute-embedding module.  Architecture follows BERT exactly at reduced
scale: learned token + position embeddings, LayerNorm, a stack of post-LN
transformer encoder blocks, and the final hidden state of the ``[CLS]``
token as the sequence representation C(e) (paper Eq. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Tensor,
    TransformerEncoder,
)
from .tokenizer import WordPieceTokenizer


@dataclass
class BertConfig:
    """Hyper-parameters for :class:`MiniBert`.

    Defaults are sized for CPU-scale experiments; the paper's BERT-base
    values would be dim=768, num_heads=12, num_layers=12, max_len=128.
    """

    vocab_size: int
    dim: int = 64
    num_heads: int = 4
    ff_dim: int = 128
    num_layers: int = 2
    max_len: int = 64
    dropout: float = 0.1

    def __post_init__(self) -> None:
        if self.dim % self.num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        if self.vocab_size < 5:
            raise ValueError("vocab_size must cover the special tokens")


class MiniBert(Module):
    """BERT-style encoder producing per-token states and a [CLS] vector."""

    def __init__(self, config: BertConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.dim, rng)
        self.position_embedding = Embedding(config.max_len, config.dim, rng)
        self.embed_norm = LayerNorm(config.dim)
        self.embed_dropout = Dropout(config.dropout, rng)
        self.encoder = TransformerEncoder(
            config.dim, config.num_heads, config.ff_dim,
            config.num_layers, rng, config.dropout,
        )

    def forward(self, ids: np.ndarray,
                mask: Optional[np.ndarray] = None) -> Tensor:
        """Encode token ids ``(B, T)`` into hidden states ``(B, T, D)``."""
        ids = np.asarray(ids)
        if ids.ndim != 2:
            raise ValueError(f"expected (batch, seq) ids, got shape {ids.shape}")
        if ids.shape[1] > self.config.max_len:
            raise ValueError(
                f"sequence length {ids.shape[1]} exceeds max_len "
                f"{self.config.max_len}"
            )
        positions = np.broadcast_to(np.arange(ids.shape[1]), ids.shape)
        hidden = self.token_embedding(ids) + self.position_embedding(positions)
        hidden = self.embed_dropout(self.embed_norm(hidden))
        return self.encoder(hidden, mask)

    def encode_cls(self, ids: np.ndarray,
                   mask: Optional[np.ndarray] = None) -> Tensor:
        """Return C(e): the final hidden state of the leading [CLS] token."""
        hidden = self.forward(ids, mask)
        return hidden[:, 0, :]


class BertForMaskedLM(Module):
    """MiniBert plus a tied-weight masked-language-model head."""

    def __init__(self, config: BertConfig, rng: np.random.Generator):
        super().__init__()
        self.bert = MiniBert(config, rng)
        self.transform = Linear(config.dim, config.dim, rng)
        self.norm = LayerNorm(config.dim)
        # Output projection shares no weights with the input embedding to
        # keep the autograd graph simple; BERT's tying is an optimisation,
        # not required for the representation property SDEA uses.
        self.decoder = Linear(config.dim, config.vocab_size, rng)

    def forward(self, ids: np.ndarray,
                mask: Optional[np.ndarray] = None) -> Tensor:
        """Return MLM logits of shape ``(B, T, vocab_size)``."""
        hidden = self.bert(ids, mask)
        transformed = self.norm(self.transform(hidden).tanh())
        return self.decoder(transformed)


def encode_batch(tokenizer: WordPieceTokenizer, texts, max_len: int
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Encode a list of strings into padded id / mask arrays."""
    ids = np.empty((len(texts), max_len), dtype=np.int64)
    mask = np.empty((len(texts), max_len), dtype=bool)
    for row, text in enumerate(texts):
        row_ids, row_mask = tokenizer.encode(text, max_len)
        ids[row] = row_ids
        mask[row] = row_mask
    return ids, mask
