"""Per-table experiment suite definitions.

One suite per paper table; the benchmark files under ``benchmarks/`` call
these with bench-sized datasets.  Method lists mirror the technique
families the paper compares.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..datasets.registry import build_dataset
from ..kg.pair import KGPair
from .runner import ExperimentResult, run_suite

# Methods reported by Tables III and IV (one per family + SDEA variants).
FULL_METHODS: tuple = (
    "mtranse", "jape-stru", "jape", "naea", "bootea", "transedge",
    "iptranse", "rsn-lite", "gcn", "gcn-align", "gat-align", "kecg",
    "hman", "rdgcn", "hgcn", "cea", "bert-int",
    "sdea", "sdea-norel",
)

# Table V only reports the literal-aware competitors + GCN-Align.
TABLE5_METHODS: tuple = ("gcn-align", "cea", "bert-int", "sdea", "sdea-norel")

# Quick subset for unit-style checks.
FAST_METHODS: tuple = ("jape-stru", "gcn-align", "cea", "sdea-norel")

TABLE3_DATASETS: tuple = ("dbp15k/zh_en", "dbp15k/ja_en", "dbp15k/fr_en")
TABLE4_DATASETS: tuple = ("srprs/en_fr", "srprs/en_de", "srprs/dbp_wd",
                          "srprs/dbp_yg")
TABLE5_DATASETS: tuple = ("openea/d_w_15k_v1", "openea/d_w_100k_v1")
ALL_DATASETS: tuple = TABLE3_DATASETS + TABLE4_DATASETS + TABLE5_DATASETS


def build_pairs(dataset_names: Sequence[str], **kwargs) -> Dict[str, KGPair]:
    """Build several datasets keyed by their short name."""
    return {
        name.split("/")[-1]: build_dataset(name, **kwargs)
        for name in dataset_names
    }


def run_table(dataset_names: Sequence[str], methods: Sequence[str],
              with_stable_matching: bool = False,
              **dataset_kwargs) -> Dict[str, List[ExperimentResult]]:
    """Run a whole table: every method on every dataset.

    Returns short-dataset-name → list of per-method results.
    """
    out: Dict[str, List[ExperimentResult]] = {}
    for name in dataset_names:
        pair = build_dataset(name, **dataset_kwargs)
        split = pair.split()
        out[name.split("/")[-1]] = run_suite(
            methods, pair, split, with_stable_matching=with_stable_matching
        )
    return out
