"""Seed-sensitivity analysis.

At this reproduction's scale (hundreds of test links), run-to-run
variance is non-trivial; a credible comparison needs it quantified.
This module refits a method across several seeds — reseeding both the
model and the split — and reports mean ± std for each metric, plus a
bootstrap CI for the last run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..align.evaluator import similarity_for_links
from ..align.metrics import bootstrap_confidence_interval
from ..align.similarity import rank_of_target
from ..kg.pair import KGPair
from .methods import make_method


@dataclass
class SeedSensitivityReport:
    """Per-seed metrics and their aggregate statistics."""

    method: str
    dataset: str
    seeds: List[int]
    hits_at_1: List[float]
    hits_at_10: List[float]
    mrr: List[float]
    last_run_ci: tuple  # (estimate, lower, upper) of Hits@1

    def summary(self) -> Dict[str, tuple]:
        """metric → (mean, std) over seeds."""
        return {
            "H@1": (float(np.mean(self.hits_at_1)),
                    float(np.std(self.hits_at_1))),
            "H@10": (float(np.mean(self.hits_at_10)),
                     float(np.std(self.hits_at_10))),
            "MRR": (float(np.mean(self.mrr)), float(np.std(self.mrr))),
        }

    def format(self) -> str:
        lines = [f"{self.method} on {self.dataset} over seeds {self.seeds}"]
        for metric, (mean, std) in self.summary().items():
            scale = 100.0 if metric.startswith("H@") else 1.0
            lines.append(
                f"  {metric:>4}: {scale * mean:6.1f} ± {scale * std:4.1f}"
            )
        estimate, lower, upper = self.last_run_ci
        lines.append(
            f"  bootstrap 95% CI of H@1 (last run): "
            f"[{100 * lower:.1f}, {100 * upper:.1f}]"
        )
        return "\n".join(lines)


def seed_sensitivity(method_name: str, pair: KGPair,
                     seeds: Sequence[int] = (0, 1, 2),
                     ) -> SeedSensitivityReport:
    """Refit ``method_name`` across seeds; splits are reseeded too.

    The model's own seed is changed where the method exposes one
    (``config.seed`` or ``model.config.seed``); the split seed always
    changes, so the variance covers both sources.
    """
    hits1: List[float] = []
    hits10: List[float] = []
    mrrs: List[float] = []
    last_ranks = None
    for seed in seeds:
        split = pair.split(seed=1000 + seed)  # fresh split per seed
        method = make_method(method_name)
        config = getattr(method, "config", None)
        if config is None and hasattr(method, "model"):
            config = method.model.config
        if config is not None and hasattr(config, "seed"):
            config.seed = int(seed)
        method.fit(pair, split)
        emb1, emb2 = method.embeddings(1), method.embeddings(2)
        similarity, targets = similarity_for_links(emb1, emb2, split.test)
        ranks = rank_of_target(similarity, targets)
        hits1.append(float((ranks <= 1).mean()))
        hits10.append(float((ranks <= 10).mean()))
        mrrs.append(float((1.0 / ranks).mean()))
        last_ranks = ranks
    ci = bootstrap_confidence_interval(last_ranks, "hits1", seed=0)
    return SeedSensitivityReport(
        method=method_name, dataset=pair.name, seeds=list(seeds),
        hits_at_1=hits1, hits_at_10=hits10, mrr=mrrs, last_run_ci=ci,
    )
