"""Unified method factory: baselines + SDEA behind the Aligner interface."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..baselines.base import Aligner
from ..baselines.registry import _FACTORIES as _BASELINE_FACTORIES
from ..core.config import SDEAConfig
from ..core.model import SDEA
from ..kg.pair import AlignmentSplit, KGPair


class SDEAAligner(Aligner):
    """Adapter exposing :class:`repro.core.SDEA` as an Aligner."""

    name = "sdea"

    def __init__(self, config: Optional[SDEAConfig] = None):
        self.model = SDEA(config)

    def fit(self, pair: KGPair, split: Optional[AlignmentSplit] = None) -> None:
        self.model.fit(pair, split or pair.split())

    def embeddings(self, side: int) -> np.ndarray:
        return self.model.embeddings(side)


class SDEAWithoutRelation(SDEAAligner):
    """Ablation "SDEA w/o rel.": attribute embeddings only (H_ent = H_a)."""

    name = "sdea-norel"

    def __init__(self, config: Optional[SDEAConfig] = None):
        config = config or SDEAConfig()
        config.use_relation = False
        super().__init__(config)


def default_sdea_config(**overrides) -> SDEAConfig:
    """The SDEA configuration used by the benchmark harness."""
    config = SDEAConfig()
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise AttributeError(f"SDEAConfig has no field {key!r}")
        setattr(config, key, value)
    return config


_EXTRA_FACTORIES: Dict[str, Callable[[], Aligner]] = {
    "sdea": SDEAAligner,
    "sdea-norel": SDEAWithoutRelation,
}


def available_methods() -> List[str]:
    """All method names usable by the experiment runner."""
    return sorted({**_BASELINE_FACTORIES, **_EXTRA_FACTORIES})


def make_method(name: str) -> Aligner:
    """Instantiate a method (baseline or SDEA variant) by name."""
    if name in _EXTRA_FACTORIES:
        return _EXTRA_FACTORIES[name]()
    if name in _BASELINE_FACTORIES:
        return _BASELINE_FACTORIES[name]()
    raise KeyError(f"unknown method {name!r}; available: {available_methods()}")
