"""Long-tail analysis (paper Section V-B2).

Buckets test-set alignment accuracy by the source entity's relational
degree, contrasting SDEA against a structure-only baseline on a sparse
(SRPRS-like) dataset — the paper's claim is that structure-dependent
methods collapse on long-tail entities while SDEA's attribute semantics
carry them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..align.evaluator import evaluate_by_degree_bucket
from ..align.metrics import AlignmentMetrics
from ..kg.pair import AlignmentSplit, KGPair
from .methods import make_method

DEFAULT_BUCKETS = ((1, 3), (4, 10), (11, 10**9))


@dataclass
class LongtailReport:
    """Per-degree-bucket metrics for one method."""

    method: str
    dataset: str
    buckets: Dict[str, AlignmentMetrics]

    def hits_at_1(self) -> Dict[str, float]:
        return {label: m.hits_at_1 for label, m in self.buckets.items()}


def longtail_analysis(method_name: str, pair: KGPair,
                      split: AlignmentSplit | None = None,
                      buckets: Sequence[tuple] = DEFAULT_BUCKETS
                      ) -> LongtailReport:
    """Fit a method and evaluate it per degree bucket."""
    split = split or pair.split()
    method = make_method(method_name)
    method.fit(pair, split)
    bucket_metrics = evaluate_by_degree_bucket(
        method.embeddings(1), method.embeddings(2), pair, split.test,
        buckets=buckets,
    )
    return LongtailReport(
        method=method_name, dataset=pair.name, buckets=bucket_metrics
    )


def format_longtail_table(reports: Sequence[LongtailReport]) -> str:
    """Render per-bucket H@1 rows for several methods."""
    if not reports:
        return "(no reports)"
    labels = list(reports[0].buckets)
    header = f"{'Method':<12}" + "".join(f" {label:>9}" for label in labels)
    lines = [header, "-" * len(header)]
    for report in reports:
        row = f"{report.method:<12}" + "".join(
            f" {100 * report.buckets[label].hits_at_1:>8.1f}%"
            for label in labels
        )
        lines.append(row)
    return "\n".join(lines)
