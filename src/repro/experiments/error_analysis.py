"""Error analysis of the challenging OpenEA-like datasets (Section V-B1).

Reproduces the paper's two diagnostic statistics for D_W_15K_V1:

1. the fraction of to-be-aligned test entities *without* any matching
   neighbors (paper: 99.6% — relations carry almost no alignment signal);
2. the composition of attribute values (paper: ~40% numerical, split into
   identifiers / integers+floats / dates) — the trait that stresses the
   transformer's weak numeracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..kg.pair import AlignmentSplit, KGPair
from ..kg.statistics import value_type_fractions


@dataclass
class ErrorAnalysisReport:
    """Diagnostics for one dataset."""

    dataset: str
    no_matching_neighbor_fraction: float
    value_types_kg1: Dict[str, float]
    value_types_kg2: Dict[str, float]

    def numeric_fraction(self) -> float:
        """Pooled non-text (number + date) fraction across both KGs."""
        f1 = self.value_types_kg1
        f2 = self.value_types_kg2
        return (
            (f1["number"] + f1["date"]) + (f2["number"] + f2["date"])
        ) / 2.0

    def format(self) -> str:
        return (
            f"dataset: {self.dataset}\n"
            f"test pairs without matching neighbors: "
            f"{100 * self.no_matching_neighbor_fraction:.1f}%\n"
            f"numeric/date attribute values (pooled): "
            f"{100 * self.numeric_fraction():.1f}%\n"
            f"  kg1 value types: {_fmt(self.value_types_kg1)}\n"
            f"  kg2 value types: {_fmt(self.value_types_kg2)}"
        )


def error_analysis(pair: KGPair,
                   split: AlignmentSplit | None = None) -> ErrorAnalysisReport:
    """Compute the Section-V-B1 diagnostics on a dataset."""
    split = split or pair.split()
    matched = pair.matched_neighbor_fraction(split.test)
    return ErrorAnalysisReport(
        dataset=pair.name,
        no_matching_neighbor_fraction=1.0 - matched,
        value_types_kg1=value_type_fractions(pair.kg1),
        value_types_kg2=value_type_fractions(pair.kg2),
    )


def _fmt(fractions: Dict[str, float]) -> str:
    return ", ".join(f"{k}={100 * v:.1f}%" for k, v in sorted(fractions.items()))
