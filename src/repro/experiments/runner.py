"""Experiment runner: train + evaluate one method on one dataset."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..align.evaluator import EvaluationResult
from ..kg.pair import AlignmentSplit, KGPair
from .methods import make_method


@dataclass
class ExperimentResult:
    """One (method, dataset) cell of a results table."""

    method: str
    dataset: str
    hits_at_1: float
    hits_at_10: float
    mrr: float
    stable_hits_at_1: Optional[float]
    seconds: float

    @classmethod
    def from_evaluation(cls, method: str, dataset: str,
                        result: EvaluationResult,
                        seconds: float) -> "ExperimentResult":
        return cls(
            method=method,
            dataset=dataset,
            hits_at_1=result.metrics.hits_at_1,
            hits_at_10=result.metrics.hits_at_10,
            mrr=result.metrics.mrr,
            stable_hits_at_1=result.stable_hits_at_1,
            seconds=seconds,
        )

    def row(self) -> Dict[str, float]:
        out = {
            "H@1": round(100 * self.hits_at_1, 1),
            "H@10": round(100 * self.hits_at_10, 1),
            "MRR": round(self.mrr, 2),
        }
        if self.stable_hits_at_1 is not None:
            out["stable-H@1"] = round(100 * self.stable_hits_at_1, 1)
        return out


def run_experiment(method_name: str, pair: KGPair,
                   split: Optional[AlignmentSplit] = None,
                   with_stable_matching: bool = False) -> ExperimentResult:
    """Fit ``method_name`` on the pair's train split; evaluate on test."""
    split = split or pair.split()
    method = make_method(method_name)
    start = time.perf_counter()
    method.fit(pair, split)
    evaluation = method.evaluate(
        split.test, with_stable_matching=with_stable_matching
    )
    elapsed = time.perf_counter() - start
    return ExperimentResult.from_evaluation(
        method_name, pair.name, evaluation, elapsed
    )


def run_suite(method_names: Sequence[str], pair: KGPair,
              split: Optional[AlignmentSplit] = None,
              with_stable_matching: bool = False) -> List[ExperimentResult]:
    """Run several methods on one dataset (one table column group)."""
    split = split or pair.split()
    return [
        run_experiment(name, pair, split, with_stable_matching)
        for name in method_names
    ]
