"""Experiment runner: train + evaluate one method on one dataset.

Every invocation is traced (``run → fit / evaluate`` spans) and, while an
observability session (:func:`repro.obs.session`) is active, a structured
run record is written under the session's ``runs_dir`` — see
``docs/observability.md``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..align.evaluator import EvaluationResult
from ..concurrency import shard_safe
from ..kg.pair import AlignmentSplit, KGPair
from ..obs import events, trace
from ..obs import metrics as metrics_mod
from ..obs import shards as shards_mod
from ..obs import telemetry as telemetry_mod
from ..obs.runrecord import RunRecord, _slug, write_record
from ..obs.session import active_session
from .methods import make_method


@dataclass
class ExperimentResult:
    """One (method, dataset) cell of a results table.

    ``seconds`` is the total train+evaluate wall time;
    ``fit_seconds`` / ``eval_seconds`` attribute it to the two stages.
    """

    method: str
    dataset: str
    hits_at_1: float
    hits_at_10: float
    mrr: float
    stable_hits_at_1: Optional[float]
    seconds: float
    fit_seconds: float = 0.0
    eval_seconds: float = 0.0
    record_path: Optional[Path] = None
    # Filled from the op profiler when the run executed inside
    # ``obs.session(profile=True)``; zero otherwise.
    peak_tensor_bytes: int = 0
    total_flops_estimate: int = 0
    # Health-engine digest (rules + fired alerts) when the run streamed
    # telemetry with rules armed; None otherwise.  ``repro run
    # --health-gate`` exits nonzero when this contains a fail alert.
    health: Optional[Dict[str, object]] = None

    @classmethod
    def from_evaluation(cls, method: str, dataset: str,
                        result: EvaluationResult,
                        seconds: float,
                        fit_seconds: float = 0.0,
                        eval_seconds: float = 0.0) -> "ExperimentResult":
        return cls(
            method=method,
            dataset=dataset,
            hits_at_1=result.metrics.hits_at_1,
            hits_at_10=result.metrics.hits_at_10,
            mrr=result.metrics.mrr,
            stable_hits_at_1=result.stable_hits_at_1,
            seconds=seconds,
            fit_seconds=fit_seconds,
            eval_seconds=eval_seconds,
        )

    def row(self) -> Dict[str, float]:
        out = {
            "H@1": round(100 * self.hits_at_1, 1),
            "H@10": round(100 * self.hits_at_10, 1),
            "MRR": round(self.mrr, 2),
        }
        if self.stable_hits_at_1 is not None:
            out["stable-H@1"] = round(100 * self.stable_hits_at_1, 1)
        out["fit(s)"] = round(self.fit_seconds, 2)
        out["eval(s)"] = round(self.eval_seconds, 2)
        return out


def _method_config(method) -> tuple[Dict[str, object], Optional[int]]:
    """Best-effort (config dict, seed) extraction from an Aligner."""
    for holder in (method, getattr(method, "model", None)):
        config = getattr(holder, "config", None)
        if config is None:
            continue
        if dataclasses.is_dataclass(config) and not isinstance(config, type):
            as_dict = dataclasses.asdict(config)
        elif isinstance(config, dict):
            as_dict = dict(config)
        else:
            continue
        seed = as_dict.get("seed")
        return as_dict, seed if isinstance(seed, int) else None
    return {}, None


def _open_stream(session, method, method_name: str, dataset: str):
    """Open the live telemetry stream (+ health engine) for one run.

    Returns ``(stream, engine)``, both ``None`` unless the active
    session asked for telemetry (``obs.session(telemetry=True)`` or
    ``health_rules=...``) and has a ``runs_dir`` to stream into.  The
    stream opens under a provisional ``live-*`` name — ``repro obs
    watch`` tails it while the run is in flight — and is renamed next to
    the run record once the record's final (dedup-counted) name exists.

    The engine is armed when the session carries rules, or the method's
    config declares ``health_rules``; both sources merge (session rules
    first), falling back to :data:`repro.obs.health.DEFAULT_RULES` when
    the session armed rules without naming any.  ``drop(vs=baseline)``
    references resolve against the latest prior record for the same
    (method, dataset) in the session's ``runs_dir``.
    """
    if (session is None or not getattr(session, "telemetry", False)
            or session.runs_dir is None):
        return None, None
    if shards_mod.current_shard() is not None:
        # Inside a sharded suite the fork already multiplexes telemetry
        # through per-worker fragments; a second stream per run would
        # fight over the global stream slot across threads.
        return None, None
    from ..obs.compare import baseline_metrics
    from ..obs.health import DEFAULT_RULES, HealthEngine, parse_rules

    config, _ = _method_config(method)
    config_rules = config.get("health_rules") or ()
    engine = None
    if session.health_rules is not None or config_rules:
        texts = list(session.health_rules or ())
        texts += [str(rule) for rule in config_rules]
        if not texts:
            texts = list(DEFAULT_RULES)
        engine = HealthEngine(
            parse_rules(texts),
            baseline=baseline_metrics(session.runs_dir, method_name,
                                      dataset),
            registry=session.registry,
        )
    directory = Path(session.runs_dir)
    directory.mkdir(parents=True, exist_ok=True)
    live = directory / (
        f"live-{os.getpid()}-{_slug(method_name)}-{_slug(dataset)}"
        + telemetry_mod.STREAM_SUFFIX
    )
    if live.exists():  # leftover from a crashed run: start fresh
        live.unlink()
    stream = telemetry_mod.TelemetryStream(
        live, registry=session.registry,
        snapshot_seconds=getattr(session, "snapshot_seconds", 5.0),
        engine=engine,
    )
    return stream, engine


def _note_anomaly(engine, exc) -> bool:
    """Record ``exc`` as a fail alert when it is an AnomalyError."""
    try:
        from ..analysis.anomaly import AnomalyError
    except ImportError:  # pragma: no cover - analysis always present
        return False
    if engine is None or not isinstance(exc, AnomalyError):
        return False
    engine.note_anomaly(exc)
    return True


def _write_run_record(result: ExperimentResult, method,
                      stream=None, engine=None,
                      shards=None) -> Optional[Path]:
    """Persist a run record when an obs session with a runs_dir is active.

    With op profiling active the record embeds the profiler digest
    (totals + top-10 op table) and a chrome-trace file — spans merged
    with op events, Perfetto-loadable — is written next to the record
    and pointed to from ``profile.chrome_trace``.  With telemetry active
    the record embeds the stream digest (event/snapshot counts + the
    health summary) and the closed stream is renamed to
    ``<record-stem>-stream.jsonl`` next to the record.  ``shards`` is
    the fork's per-shard timing digest when the run evaluated sharded.

    Metrics/spans snapshot the *ambient* registry/tracer rather than the
    session's: they are the same objects in a serial run, but inside a
    sharded suite the ambient slots route to the worker's own shard, so
    each method's record captures its shard-local view instead of a
    mid-merge racy read of the parent.
    """
    session = active_session()
    if session is None or session.runs_dir is None:
        return None
    from ..obs.runrecord import version_stamp
    config, seed = _method_config(method)
    profiler = getattr(session, "profiler", None)
    telemetry_digest: Dict[str, object] = {}
    if stream is not None:
        telemetry_digest = {
            "stream": stream.path.name,
            "stream_schema_version": telemetry_mod.STREAM_SCHEMA_VERSION,
            "events": stream.events_written,
            "snapshots": stream.snapshots_written,
        }
        if engine is not None:
            telemetry_digest["health"] = engine.summary()
    record = RunRecord(
        method=result.method,
        dataset=result.dataset,
        timestamp=time.time(),
        config=config,
        seed=seed,
        version=version_stamp(),
        results=result.row(),
        timing={
            "fit_seconds": result.fit_seconds,
            "eval_seconds": result.eval_seconds,
            "total_seconds": result.seconds,
        },
        metrics=metrics_mod.get_registry().snapshot(),
        spans=trace.get_tracer().to_dict(),
        profile=profiler.summary(top=10) if profiler is not None else {},
        telemetry=telemetry_digest,
        shards=dict(shards) if shards else {},
    )
    path = write_record(record, session.runs_dir)
    # The record file name (dedup counter) is only known after
    # write_record, so sibling-file pointers are patched into the JSON
    # in place.
    patches: Dict[str, str] = {}
    if profiler is not None:
        from ..obs.chrometrace import build_chrome_trace, write_chrome_trace
        trace_path = path.with_name(path.stem + "-trace.json")
        write_chrome_trace(trace_path, build_chrome_trace(
            span_tree=trace.get_tracer().to_dict(),
            op_events=profiler.trace_events(),
            metadata={"run_id": record.run_id, "method": record.method,
                      "dataset": record.dataset},
        ))
        record.profile["chrome_trace"] = trace_path.name
        patches["profile"] = trace_path.name
    if stream is not None:
        stem = path.name[:-len(".json")]
        final = stream.rename(
            path.with_name(stem + telemetry_mod.STREAM_SUFFIX)
        )
        record.telemetry["stream"] = final.name
        patches["telemetry"] = final.name
    if patches:
        data = json.loads(path.read_text(encoding="utf-8"))
        if "profile" in patches:
            data["profile"]["chrome_trace"] = patches["profile"]
        if "telemetry" in patches:
            data["telemetry"]["stream"] = patches["telemetry"]
        path.write_text(json.dumps(data, indent=2, sort_keys=True,
                                   default=str), encoding="utf-8")
    return path


@shard_safe(merges=("obs.metrics.registry", "obs.tracing.tracer"),
            owns=("obs.telemetry.stream", "obs.events.log"),
            mutates=("pair",), io=True,
            note="installs a per-run telemetry stream; caches the "
                 "split on the pair; eval_shards > 1 forks/merges the "
                 "obs stack around the ranking pool")
def run_experiment(method_name: str, pair: KGPair,
                   split: Optional[AlignmentSplit] = None,
                   with_stable_matching: bool = False,
                   eval_shards: int = 1) -> ExperimentResult:
    """Fit ``method_name`` on the pair's train split; evaluate on test.

    ``eval_shards > 1`` shards the evaluation ranking over a thread pool
    (:func:`repro.obs.shards.run_sharded`); metrics and merged
    counter/histogram totals are bitwise-identical to the serial path,
    and the run record gains a per-shard timing digest.

    Inside ``obs.session(telemetry=True)`` (or with health rules armed)
    the whole run streams live events — ``run_start``, per-epoch
    ``epoch`` / ``validation``, ``eval``, ``run_end`` — to an
    append-only JSONL file next to the eventual run record; alerts the
    health engine fires land in the same stream.  If the run dies on an
    :class:`~repro.analysis.anomaly.AnomalyError`, the anomaly is
    converted into a ``fail`` alert (keeping the op's creation-stack
    provenance) before the exception propagates, so ``repro run
    --health-gate`` reports *where* the NaN was born.
    """
    split = split or pair.split()
    method = make_method(method_name)
    session = active_session()
    stream, engine = _open_stream(session, method, method_name, pair.name)
    events.info("run_start", method=method_name, dataset=pair.name,
                train=len(split.train), valid=len(split.valid),
                test=len(split.test))
    try:
        previous_stream = telemetry_mod.set_stream(stream) \
            if stream is not None else None
        try:
            telemetry_mod.emit(
                "run_start", method=method_name, dataset=pair.name,
                train=len(split.train), valid=len(split.valid),
                test=len(split.test),
            )
            with trace.span("run", method=method_name, dataset=pair.name):
                fit_start = time.perf_counter()
                telemetry_mod.emit("phase", name="fit")
                with trace.span("fit"):
                    method.fit(pair, split)
                fit_seconds = time.perf_counter() - fit_start
                eval_start = time.perf_counter()
                telemetry_mod.emit("phase", name="evaluate")
                if session is not None:
                    session.last_shards = None
                with trace.span("evaluate"):
                    evaluation = method.evaluate(
                        split.test,
                        with_stable_matching=with_stable_matching,
                        eval_shards=eval_shards,
                    )
                eval_seconds = time.perf_counter() - eval_start
                shards_digest = (session.last_shards
                                 if session is not None else None)
        finally:
            if stream is not None:
                telemetry_mod.set_stream(previous_stream)
    except Exception as exc:
        _note_anomaly(engine, exc)
        if stream is not None:
            stream.close()
        if session is not None:
            if stream is not None:
                session.last_stream_path = stream.path
            session.last_health = (engine.summary()
                                   if engine is not None else None)
        raise
    result = ExperimentResult.from_evaluation(
        method_name, pair.name, evaluation,
        seconds=fit_seconds + eval_seconds,
        fit_seconds=fit_seconds, eval_seconds=eval_seconds,
    )
    profiler = getattr(session, "profiler", None) if session else None
    if profiler is not None:
        result.peak_tensor_bytes = profiler.peak_live_bytes
        result.total_flops_estimate = profiler.total_flops()
    if stream is not None:
        stream.emit(
            "run_end", method=method_name, dataset=pair.name,
            hits_at_1=result.hits_at_1, hits_at_10=result.hits_at_10,
            mrr=result.mrr, fit_seconds=fit_seconds,
            eval_seconds=eval_seconds,
        )
        stream.close()
    if engine is not None:
        result.health = engine.summary()
    result.record_path = _write_run_record(result, method,
                                           stream=stream, engine=engine,
                                           shards=shards_digest)
    if session is not None:
        if stream is not None:
            session.last_stream_path = stream.path
        session.last_health = result.health
    events.info("run_end", method=method_name, dataset=pair.name,
                hits_at_1=result.hits_at_1, fit_seconds=fit_seconds,
                eval_seconds=eval_seconds)
    return result


@shard_safe(merges=("obs.metrics.registry", "obs.tracing.tracer"),
            owns=("obs.telemetry.stream", "obs.events.log"),
            mutates=("pair",), io=True,
            note="per-method sweep; each method run is itself a "
                 "shard-safe entry; shards > 1 runs methods on a "
                 "forked/merged obs pool")
def run_suite(method_names: Sequence[str], pair: KGPair,
              split: Optional[AlignmentSplit] = None,
              with_stable_matching: bool = False,
              shards: int = 1,
              eval_shards: int = 1) -> List[ExperimentResult]:
    """Run several methods on one dataset (one table column group).

    ``shards > 1`` runs the per-method sweep itself on a sharded thread
    pool — method ``i`` lands on shard ``i % shards``, results keep the
    ``method_names`` order, and each worker's metrics/spans/events fold
    back into the ambient stack on join with shard attribution.  Per-run
    live telemetry streams are skipped inside the pool (the fork's
    per-worker fragments multiplex instead); ``eval_shards`` additionally
    shards each method's evaluation ranking (nested forks reuse the
    outer routers).
    """
    split = split or pair.split()
    names = list(method_names)
    if shards <= 1:
        return [
            run_experiment(name, pair, split, with_stable_matching,
                           eval_shards=eval_shards)
            for name in names
        ]
    return shards_mod.run_sharded(
        lambda name: run_experiment(name, pair, split, with_stable_matching,
                                    eval_shards=eval_shards),
        names, shards=shards, label="suite",
    )
