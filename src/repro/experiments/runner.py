"""Experiment runner: train + evaluate one method on one dataset.

Every invocation is traced (``run → fit / evaluate`` spans) and, while an
observability session (:func:`repro.obs.session`) is active, a structured
run record is written under the session's ``runs_dir`` — see
``docs/observability.md``.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..align.evaluator import EvaluationResult
from ..kg.pair import AlignmentSplit, KGPair
from ..obs import events, trace
from ..obs.runrecord import RunRecord, write_record
from ..obs.session import active_session
from .methods import make_method


@dataclass
class ExperimentResult:
    """One (method, dataset) cell of a results table.

    ``seconds`` is the total train+evaluate wall time;
    ``fit_seconds`` / ``eval_seconds`` attribute it to the two stages.
    """

    method: str
    dataset: str
    hits_at_1: float
    hits_at_10: float
    mrr: float
    stable_hits_at_1: Optional[float]
    seconds: float
    fit_seconds: float = 0.0
    eval_seconds: float = 0.0
    record_path: Optional[Path] = None
    # Filled from the op profiler when the run executed inside
    # ``obs.session(profile=True)``; zero otherwise.
    peak_tensor_bytes: int = 0
    total_flops_estimate: int = 0

    @classmethod
    def from_evaluation(cls, method: str, dataset: str,
                        result: EvaluationResult,
                        seconds: float,
                        fit_seconds: float = 0.0,
                        eval_seconds: float = 0.0) -> "ExperimentResult":
        return cls(
            method=method,
            dataset=dataset,
            hits_at_1=result.metrics.hits_at_1,
            hits_at_10=result.metrics.hits_at_10,
            mrr=result.metrics.mrr,
            stable_hits_at_1=result.stable_hits_at_1,
            seconds=seconds,
            fit_seconds=fit_seconds,
            eval_seconds=eval_seconds,
        )

    def row(self) -> Dict[str, float]:
        out = {
            "H@1": round(100 * self.hits_at_1, 1),
            "H@10": round(100 * self.hits_at_10, 1),
            "MRR": round(self.mrr, 2),
        }
        if self.stable_hits_at_1 is not None:
            out["stable-H@1"] = round(100 * self.stable_hits_at_1, 1)
        out["fit(s)"] = round(self.fit_seconds, 2)
        out["eval(s)"] = round(self.eval_seconds, 2)
        return out


def _method_config(method) -> tuple[Dict[str, object], Optional[int]]:
    """Best-effort (config dict, seed) extraction from an Aligner."""
    for holder in (method, getattr(method, "model", None)):
        config = getattr(holder, "config", None)
        if config is None:
            continue
        if dataclasses.is_dataclass(config) and not isinstance(config, type):
            as_dict = dataclasses.asdict(config)
        elif isinstance(config, dict):
            as_dict = dict(config)
        else:
            continue
        seed = as_dict.get("seed")
        return as_dict, seed if isinstance(seed, int) else None
    return {}, None


def _write_run_record(result: ExperimentResult, method) -> Optional[Path]:
    """Persist a run record when an obs session with a runs_dir is active.

    With op profiling active the record embeds the profiler digest
    (totals + top-10 op table) and a chrome-trace file — spans merged
    with op events, Perfetto-loadable — is written next to the record
    and pointed to from ``profile.chrome_trace``.
    """
    session = active_session()
    if session is None or session.runs_dir is None:
        return None
    from ..obs.runrecord import version_stamp
    config, seed = _method_config(method)
    profiler = getattr(session, "profiler", None)
    record = RunRecord(
        method=result.method,
        dataset=result.dataset,
        timestamp=time.time(),
        config=config,
        seed=seed,
        version=version_stamp(),
        results=result.row(),
        timing={
            "fit_seconds": result.fit_seconds,
            "eval_seconds": result.eval_seconds,
            "total_seconds": result.seconds,
        },
        metrics=session.registry.snapshot(),
        spans=session.tracer.to_dict(),
        profile=profiler.summary(top=10) if profiler is not None else {},
    )
    path = write_record(record, session.runs_dir)
    if profiler is not None:
        from ..obs.chrometrace import build_chrome_trace, write_chrome_trace
        trace_path = path.with_name(path.stem + "-trace.json")
        write_chrome_trace(trace_path, build_chrome_trace(
            span_tree=session.tracer.to_dict(),
            op_events=profiler.trace_events(),
            metadata={"run_id": record.run_id, "method": record.method,
                      "dataset": record.dataset},
        ))
        # The record file name (dedup counter) is only known after
        # write_record, so patch the pointer into the JSON in place.
        record.profile["chrome_trace"] = trace_path.name
        data = json.loads(path.read_text(encoding="utf-8"))
        data["profile"]["chrome_trace"] = trace_path.name
        path.write_text(json.dumps(data, indent=2, sort_keys=True,
                                   default=str), encoding="utf-8")
    return path


def run_experiment(method_name: str, pair: KGPair,
                   split: Optional[AlignmentSplit] = None,
                   with_stable_matching: bool = False) -> ExperimentResult:
    """Fit ``method_name`` on the pair's train split; evaluate on test."""
    split = split or pair.split()
    method = make_method(method_name)
    events.info("run_start", method=method_name, dataset=pair.name,
                train=len(split.train), valid=len(split.valid),
                test=len(split.test))
    with trace.span("run", method=method_name, dataset=pair.name):
        fit_start = time.perf_counter()
        with trace.span("fit"):
            method.fit(pair, split)
        fit_seconds = time.perf_counter() - fit_start
        eval_start = time.perf_counter()
        with trace.span("evaluate"):
            evaluation = method.evaluate(
                split.test, with_stable_matching=with_stable_matching
            )
        eval_seconds = time.perf_counter() - eval_start
    result = ExperimentResult.from_evaluation(
        method_name, pair.name, evaluation,
        seconds=fit_seconds + eval_seconds,
        fit_seconds=fit_seconds, eval_seconds=eval_seconds,
    )
    session = active_session()
    profiler = getattr(session, "profiler", None) if session else None
    if profiler is not None:
        result.peak_tensor_bytes = profiler.peak_live_bytes
        result.total_flops_estimate = profiler.total_flops()
    result.record_path = _write_run_record(result, method)
    events.info("run_end", method=method_name, dataset=pair.name,
                hits_at_1=result.hits_at_1, fit_seconds=fit_seconds,
                eval_seconds=eval_seconds)
    return result


def run_suite(method_names: Sequence[str], pair: KGPair,
              split: Optional[AlignmentSplit] = None,
              with_stable_matching: bool = False) -> List[ExperimentResult]:
    """Run several methods on one dataset (one table column group)."""
    split = split or pair.split()
    return [
        run_experiment(name, pair, split, with_stable_matching)
        for name in method_names
    ]
