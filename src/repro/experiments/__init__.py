"""Experiment harness: runners, table formatting, analyses."""

from .attention_analysis import AttentionReport, analyze_attention
from .error_analysis import ErrorAnalysisReport, error_analysis
from .longtail import (
    DEFAULT_BUCKETS,
    LongtailReport,
    format_longtail_table,
    longtail_analysis,
)
from .methods import (
    SDEAAligner,
    SDEAWithoutRelation,
    available_methods,
    default_sdea_config,
    make_method,
)
from .report import collect_results, generate_report, write_report
from .runner import ExperimentResult, run_experiment, run_suite
from .scaling import ScalingReport, scaling_analysis
from .seed_sensitivity import SeedSensitivityReport, seed_sensitivity
from .suites import (
    ALL_DATASETS,
    FAST_METHODS,
    FULL_METHODS,
    TABLE3_DATASETS,
    TABLE4_DATASETS,
    TABLE5_DATASETS,
    TABLE5_METHODS,
    build_pairs,
    run_table,
)
from .tables import (
    PAPER_REFERENCE,
    format_dataset_stats_table,
    format_degree_table,
    format_results_table,
    paper_reference,
)

__all__ = [
    "make_method", "available_methods", "SDEAAligner", "SDEAWithoutRelation",
    "default_sdea_config",
    "ExperimentResult", "run_experiment", "run_suite",
    "run_table", "build_pairs",
    "FULL_METHODS", "TABLE5_METHODS", "FAST_METHODS",
    "TABLE3_DATASETS", "TABLE4_DATASETS", "TABLE5_DATASETS", "ALL_DATASETS",
    "format_results_table", "format_dataset_stats_table",
    "format_degree_table", "paper_reference", "PAPER_REFERENCE",
    "longtail_analysis", "LongtailReport", "format_longtail_table",
    "DEFAULT_BUCKETS",
    "error_analysis", "ErrorAnalysisReport",
    "generate_report", "write_report", "collect_results",
    "analyze_attention", "AttentionReport",
    "seed_sensitivity", "SeedSensitivityReport",
    "scaling_analysis", "ScalingReport",
]
