"""Neighbor-attention analysis — the paper's Section II-B1 design claim.

SDEA's motivation: "neighbors carrying specific concepts ... should be
paid close attention. Contrarily, neighbors representing general concepts
... should be given low importance."  This module measures whether the
trained relation module actually behaves that way: for every entity, the
attention weight of each neighbor is compared to the uniform weight
``1/n``, and neighbors are bucketed into *hubs* (general concepts, top
degree percentile) vs *specific* entities.

A ratio < 1 for hubs and > 1 for specific neighbors confirms the design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.model import SDEA
from ..core.trainer import gather_neighbor_embeddings
from ..kg.pair import KGPair
from ..nn import no_grad


@dataclass
class AttentionReport:
    """Attention-vs-uniform ratios for hub and specific neighbors."""

    hub_ratio: float
    specific_ratio: float
    hub_count: int
    specific_count: int
    hub_degree_threshold: float

    def format(self) -> str:
        return (
            f"hub degree threshold (90th pct): "
            f"{self.hub_degree_threshold:.0f}\n"
            f"attention/uniform ratio — general-concept hubs: "
            f"{self.hub_ratio:.3f}  (n={self.hub_count})\n"
            f"attention/uniform ratio — specific neighbors:   "
            f"{self.specific_ratio:.3f}  (n={self.specific_count})\n"
            f"design confirmed: {self.design_confirmed()}"
        )

    def design_confirmed(self) -> bool:
        """True when hubs receive below-average, specifics above-average."""
        return self.hub_ratio < self.specific_ratio


def analyze_attention(model: SDEA, pair: KGPair, side: int = 1,
                      hub_percentile: float = 90.0,
                      batch_size: int = 64) -> AttentionReport:
    """Bucket the trained relation module's attention by neighbor degree.

    Parameters
    ----------
    model:
        A fitted SDEA with ``use_relation=True``.
    side:
        Which KG of the pair to analyse (1 or 2).
    hub_percentile:
        Degree percentile above which a neighbor counts as a
        general-concept hub.
    """
    if model.relation_model is None:
        raise RuntimeError("attention analysis needs a fitted relation module")
    graph = pair.kg1 if side == 1 else pair.kg2
    relation_model = model.relation_model
    neighbor_index = (relation_model.neighbors1 if side == 1
                      else relation_model.neighbors2)
    attrs = relation_model.attr1 if side == 1 else relation_model.attr2

    degrees = np.array([graph.degree(e) for e in graph.entities()])
    positive = degrees[degrees > 0]
    threshold = float(np.percentile(positive, hub_percentile)) if positive.size else 1.0

    hub_ratios: list[float] = []
    specific_ratios: list[float] = []
    with no_grad():
        for start in range(0, graph.num_entities, batch_size):
            batch = np.arange(start, min(start + batch_size,
                                         graph.num_entities))
            neighbor_ids, mask, lengths = neighbor_index.batch(batch)
            x = gather_neighbor_embeddings(attrs, neighbor_ids)
            _, alpha = relation_model.relation_module(
                x, mask, lengths, return_weights=True
            )
            weights = alpha.numpy()
            for row in range(len(batch)):
                count = int(lengths[row])
                if count < 2:
                    continue  # a single neighbor always gets weight 1
                uniform = 1.0 / count
                for slot in range(count):
                    neighbor = int(neighbor_ids[row, slot])
                    ratio = float(weights[row, slot] / uniform)
                    if degrees[neighbor] >= threshold:
                        hub_ratios.append(ratio)
                    else:
                        specific_ratios.append(ratio)
    return AttentionReport(
        hub_ratio=float(np.mean(hub_ratios)) if hub_ratios else 0.0,
        specific_ratio=(float(np.mean(specific_ratios))
                        if specific_ratios else 0.0),
        hub_count=len(hub_ratios),
        specific_count=len(specific_ratios),
        hub_degree_threshold=threshold,
    )
