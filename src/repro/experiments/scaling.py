"""Runtime-vs-size scaling measurement.

The paper evaluates on 15K- and 100K-entity datasets; a practical
reproduction should know how cost grows with entities.  This module fits
a method at several generated scales and reports wall-clock plus a
log-log slope estimate (slope ≈ 1 → linear, ≈ 2 → quadratic).

Used via the library (or ad hoc)::

    report = scaling_analysis("sdea-norel", factors=(1, 2, 4))
    print(report.format())
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..datasets.dbp15k import DBP15KScale, build_dbp15k
from .methods import make_method


@dataclass
class ScalingReport:
    """Entities vs wall-clock for one method."""

    method: str
    entities: List[int]
    seconds: List[float]

    def loglog_slope(self) -> float:
        """Least-squares slope of log(seconds) against log(entities)."""
        if len(self.entities) < 2:
            return float("nan")
        x = np.log(np.asarray(self.entities, dtype=float))
        y = np.log(np.maximum(np.asarray(self.seconds), 1e-9))
        slope, _ = np.polyfit(x, y, 1)
        return float(slope)

    def format(self) -> str:
        lines = [f"{self.method}: entities vs fit+eval seconds"]
        for n, s in zip(self.entities, self.seconds):
            lines.append(f"  {n:>6} entities/side   {s:8.1f}s")
        lines.append(f"  log-log slope ≈ {self.loglog_slope():.2f} "
                     f"(1=linear, 2=quadratic)")
        return "\n".join(lines)


def scaling_analysis(method_name: str,
                     factors: Sequence[int] = (1, 2, 4),
                     base: DBP15KScale | None = None) -> ScalingReport:
    """Fit ``method_name`` on DBP15K-like pairs of increasing size.

    Parameters
    ----------
    factors:
        Multipliers applied to the base scale; one fit per factor.
    base:
        Baseline scale (defaults to a small 1×: ~70 entities/side so the
        analysis itself stays cheap).
    """
    base = base or DBP15KScale(n_persons=40, n_places=15, n_clubs=8,
                               n_countries=4)
    entities: List[int] = []
    seconds: List[float] = []
    for factor in factors:
        scale = DBP15KScale(
            n_persons=base.n_persons * factor,
            n_places=base.n_places * factor,
            n_clubs=base.n_clubs * factor,
            n_countries=max(base.n_countries, base.n_countries * factor // 2),
        )
        pair = build_dbp15k("zh_en", scale=scale)
        split = pair.split()
        method = make_method(method_name)
        start = time.perf_counter()
        method.fit(pair, split)
        method.evaluate(split.test)
        seconds.append(time.perf_counter() - start)
        entities.append(pair.kg1.num_entities)
    return ScalingReport(method=method_name, entities=entities,
                         seconds=seconds)
