"""Render experiment results in the paper's table layouts (Tables I, III–VI)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..kg.pair import KGPair
from ..kg.statistics import pair_degree_proportions
from .runner import ExperimentResult

# Paper reference numbers (percent / ratio) for side-by-side comparison in
# EXPERIMENTS.md.  Keyed by (table, dataset, method).
PAPER_REFERENCE: Dict[str, Dict[str, Dict[str, tuple]]] = {
    "table3": {  # (H@1, H@10, MRR) on DBP15K
        "zh_en": {
            "naea": (38.5, 63.5, 0.47), "transedge": (75.3, 92.4, 0.81), "iptranse": (33.2, 64.5, 0.43), "kecg": (47.7, 83.6, 0.60), "hman": (56.1, 85.9, 0.67), "rdgcn": (69.7, 84.2, 0.75), "hgcn": (70.8, 84.0, 0.76),
            "mtranse": (20.9, 51.2, 0.31), "jape-stru": (37.2, 68.9, 0.48),
            "jape": (41.4, 74.1, 0.53), "bootea": (61.4, 84.1, 0.69),
            "rsn-lite": (58.0, 81.1, 0.66), "gcn": (39.8, 72.0, 0.51),
            "gcn-align": (43.4, 76.2, 0.55), "gat-align": (47.0, 83.5, 0.59),
            "cea": (71.9, 85.4, 0.77), "bert-int": (81.4, 83.7, 0.82),
            "sdea": (87.0, 96.6, 0.91), "sdea-norel": (84.8, 94.9, 0.89),
        },
        "ja_en": {
            "naea": (35.3, 61.3, 0.44), "transedge": (74.6, 92.4, 0.81), "iptranse": (29.0, 59.5, 0.39), "kecg": (49.2, 84.4, 0.61), "hman": (55.7, 86.0, 0.67), "rdgcn": (76.3, 89.7, 0.81), "hgcn": (75.8, 88.9, 0.81),
            "mtranse": (25.0, 57.2, 0.36), "jape-stru": (32.9, 63.8, 0.43),
            "jape": (36.5, 69.5, 0.48), "bootea": (57.3, 82.9, 0.66),
            "rsn-lite": (57.4, 79.9, 0.65), "gcn": (40.0, 72.9, 0.51),
            "gcn-align": (42.7, 76.2, 0.54), "gat-align": (48.3, 85.6, 0.61),
            "cea": (78.5, 90.5, 0.83), "bert-int": (80.6, 83.5, 0.82),
            "sdea": (84.8, 95.2, 0.89), "sdea-norel": (79.0, 90.2, 0.83),
        },
        "fr_en": {
            "naea": (30.8, 59.6, 0.40), "transedge": (77.0, 94.2, 0.83), "iptranse": (24.5, 56.8, 0.35), "kecg": (48.5, 84.9, 0.61), "hman": (55.0, 87.6, 0.66), "rdgcn": (87.3, 95.0, 0.90), "hgcn": (88.8, 95.9, 0.91),
            "mtranse": (24.7, 57.7, 0.36), "jape-stru": (29.3, 61.7, 0.40),
            "jape": (31.8, 66.8, 0.44), "bootea": (58.5, 84.5, 0.68),
            "rsn-lite": (61.2, 84.1, 0.69), "gcn": (38.9, 74.9, 0.51),
            "gcn-align": (41.1, 77.2, 0.53), "gat-align": (49.1, 86.7, 0.62),
            "cea": (92.8, 98.1, 0.95), "bert-int": (98.7, 99.2, 0.99),
            "sdea": (96.9, 99.5, 0.98), "sdea-norel": (96.4, 99.3, 0.98),
        },
    },
    "table4": {  # SRPRS
        "en_fr": {
            "naea": (17.7, 41.6, 0.26), "transedge": (40.0, 67.5, 0.49), "iptranse": (12.4, 30.1, 0.18), "kecg": (29.8, 61.6, 0.40), "hman": (40.0, 70.5, 0.50), "rdgcn": (67.2, 76.7, 0.71), "hgcn": (67.0, 77.0, 0.71),
            "mtranse": (21.3, 44.7, 0.29), "jape-stru": (24.1, 53.3, 0.34),
            "jape": (24.1, 54.4, 0.34), "bootea": (36.5, 64.9, 0.46),
            "rsn-lite": (35.0, 63.6, 0.44), "gcn": (24.3, 52.2, 0.34),
            "gcn-align": (29.6, 59.2, 0.40), "gat-align": (13.1, 34.2, 0.20),
            "cea": (93.3, 97.4, 0.95), "bert-int": (97.1, 97.5, 0.97),
            "sdea": (96.6, 98.6, 0.97), "sdea-norel": (95.6, 97.7, 0.96),
        },
        "en_de": {
            "naea": (30.7, 53.5, 0.39), "transedge": (55.6, 75.3, 0.63), "iptranse": (13.5, 31.6, 0.20), "kecg": (44.4, 70.7, 0.54), "hman": (52.8, 77.8, 0.62), "rdgcn": (77.9, 88.6, 0.82), "hgcn": (76.3, 86.3, 0.80),
            "mtranse": (10.7, 24.8, 0.16), "jape-stru": (30.2, 57.8, 0.40),
            "jape": (26.8, 54.7, 0.36), "bootea": (50.3, 73.2, 0.58),
            "rsn-lite": (48.4, 72.9, 0.57), "gcn": (38.5, 60.0, 0.46),
            "gcn-align": (42.8, 66.2, 0.51), "gat-align": (24.5, 43.1, 0.31),
            "cea": (94.5, 98.0, 0.96), "bert-int": (98.6, 98.8, 0.99),
            "sdea": (96.8, 98.9, 0.98), "sdea-norel": (95.7, 98.1, 0.97),
        },
        "dbp_wd": {
            "naea": (18.2, 42.9, 0.26), "transedge": (46.1, 73.8, 0.56), "iptranse": (10.1, 26.2, 0.16), "kecg": (32.3, 64.6, 0.43), "hman": (43.3, 74.4, 0.54), "rdgcn": (97.4, 99.4, 0.98), "hgcn": (98.9, 99.9, 0.99),
            "mtranse": (18.8, 38.2, 0.26), "jape-stru": (21.0, 48.5, 0.30),
            "jape": (21.2, 50.2, 0.31), "bootea": (38.4, 66.7, 0.48),
            "rsn-lite": (39.1, 66.3, 0.48), "gcn": (29.1, 55.6, 0.38),
            "gcn-align": (32.7, 61.1, 0.42), "gat-align": (15.1, 36.6, 0.22),
            "cea": (99.9, 100.0, 1.00), "bert-int": (99.6, 99.7, 1.00),
            "sdea": (98.0, 99.6, 0.99), "sdea-norel": (97.9, 99.5, 0.99),
        },
        "dbp_yg": {
            "naea": (19.5, 45.1, 0.28), "transedge": (44.3, 69.9, 0.53), "iptranse": (10.3, 26.0, 0.16), "kecg": (35.0, 65.1, 0.45), "hman": (46.1, 76.5, 0.56), "rdgcn": (99.0, 99.7, 0.99), "hgcn": (99.1, 99.7, 0.99),
            "mtranse": (19.6, 40.1, 0.27), "jape-stru": (21.5, 51.6, 0.32),
            "jape": (19.3, 50.0, 0.30), "bootea": (38.1, 65.1, 0.47),
            "rsn-lite": (39.3, 66.5, 0.49), "gcn": (31.9, 58.6, 0.41),
            "gcn-align": (34.7, 64.0, 0.45), "gat-align": (17.5, 38.1, 0.24),
            "cea": (99.9, 100.0, 1.00), "bert-int": (100.0, 100.0, 1.00),
            "sdea": (99.9, 100.0, 1.00), "sdea-norel": (99.9, 100.0, 1.00),
        },
    },
    "table5": {  # OpenEA D-W
        "d_w_15k_v1": {
            "gcn-align": (14.9, 42.9, 0.24), "cea": (19.0, None, None),
            "bert-int": (0.6, 0.6, 0.01),
            "sdea": (65.1, 77.2, 0.69), "sdea-norel": (58.2, 68.1, 0.62),
        },
        "d_w_100k_v1": {
            "gcn-align": (25.1, 50.9, 0.34), "cea": (44.5, None, None),
            "bert-int": (0.0, 0.1, 0.00),
            "sdea": (57.1, 64.5, 0.60), "sdea-norel": (52.0, 60.2, 0.55),
        },
    },
    "table6": {  # degree-range proportions (percent)
        "zh_en": {"ranges": (30.0, 46.9, 78.5)},
        "ja_en": {"ranges": (28.8, 44.0, 76.8)},
        "fr_en": {"ranges": (23.1, 33.4, 63.6)},
        "en_fr": {"ranges": (69.9, 81.5, 92.5)},
        "en_de": {"ranges": (65.4, 81.6, 94.7)},
        "dbp_wd": {"ranges": (65.7, 78.9, 90.8)},
        "dbp_yg": {"ranges": (69.8, 82.0, 94.7)},
        "d_w_15k_v1": {"ranges": (52.8, 73.7, 91.2)},
        "d_w_100k_v1": {"ranges": (54.7, 74.1, 91.4)},
    },
}


def format_results_table(results: Sequence[ExperimentResult],
                         title: str = "") -> str:
    """Render rows of (method → H@1/H@10/MRR) like Tables III–V."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'Method':<12} {'H@1':>6} {'H@10':>6} {'MRR':>6}"
    if any(r.stable_hits_at_1 is not None for r in results):
        header += f" {'st-H@1':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    for result in results:
        row = (
            f"{result.method:<12} {100 * result.hits_at_1:>6.1f} "
            f"{100 * result.hits_at_10:>6.1f} {result.mrr:>6.2f}"
        )
        if result.stable_hits_at_1 is not None:
            row += f" {100 * result.stable_hits_at_1:>7.1f}"
        lines.append(row)
    return "\n".join(lines)


def format_dataset_stats_table(pairs: Mapping[str, KGPair]) -> str:
    """Render a Table-I style statistics block for generated datasets."""
    lines = [
        f"{'Dataset':<22} {'Entities':>9} {'Rel.':>6} {'Attr.':>6} "
        f"{'RelTriples':>11} {'AttrTriples':>12}"
    ]
    lines.append("-" * len(lines[0]))
    for name, pair in pairs.items():
        for graph in (pair.kg1, pair.kg2):
            stats = graph.summary()
            lines.append(
                f"{name + '/' + graph.name.split('-')[-1]:<22} "
                f"{stats['entities']:>9} {stats['relations']:>6} "
                f"{stats['attributes']:>6} {stats['rel_triples']:>11} "
                f"{stats['attr_triples']:>12}"
            )
    return "\n".join(lines)


def format_degree_table(pairs: Mapping[str, KGPair]) -> str:
    """Render Table VI: degree-range proportions per dataset."""
    lines = [f"{'Dataset':<16} {'1~3':>7} {'1~5':>7} {'1~10':>7}"]
    lines.append("-" * len(lines[0]))
    for name, pair in pairs.items():
        props = pair_degree_proportions(pair)
        lines.append(
            f"{name:<16} {100 * props['1~3']:>6.1f}% "
            f"{100 * props['1~5']:>6.1f}% {100 * props['1~10']:>6.1f}%"
        )
    return "\n".join(lines)


def paper_reference(table: str, dataset: str, method: str):
    """Look up the paper's reported numbers (or None when absent)."""
    return PAPER_REFERENCE.get(table, {}).get(dataset, {}).get(method)
