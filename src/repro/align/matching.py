"""Hard 1-1 matching algorithms over a similarity matrix.

The paper observes that the Gale–Shapley stable-matching post-step used by
CEA "can be applied to all embedding methods to boost the performance of
1-1 alignment" (it lifts SDEA's JA-EN Hits@1 from 84.8 to 89.8).  Both
greedy and stable matching are provided.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def greedy_matching(similarity: np.ndarray) -> Dict[int, int]:
    """Globally-greedy 1-1 assignment.

    Repeatedly takes the highest remaining similarity cell whose row and
    column are both unassigned.  O(nm log nm).
    """
    n, m = similarity.shape
    order = np.argsort(-similarity, axis=None, kind="stable")
    rows_taken = np.zeros(n, dtype=bool)
    cols_taken = np.zeros(m, dtype=bool)
    assignment: Dict[int, int] = {}
    limit = min(n, m)
    for flat in order:
        row, col = divmod(int(flat), m)
        if rows_taken[row] or cols_taken[col]:
            continue
        assignment[row] = col
        rows_taken[row] = True
        cols_taken[col] = True
        if len(assignment) == limit:
            break
    return assignment


def stable_matching(similarity: np.ndarray) -> Dict[int, int]:
    """Gale–Shapley deferred acceptance (rows propose).

    Produces a matching with no blocking pair: no (row, col) both prefer
    each other over their assigned partners.  Rows beyond ``min(n, m)``
    may stay unmatched when the matrix is rectangular.
    """
    n, m = similarity.shape
    # Preference lists: columns sorted by descending similarity per row.
    preferences = np.argsort(-similarity, axis=1, kind="stable")
    next_choice = np.zeros(n, dtype=int)
    col_partner = np.full(m, -1, dtype=int)
    # All rows propose; when n > m the surplus rows exhaust their lists
    # and stay unmatched.
    free_rows = list(range(n))

    while free_rows:
        row = free_rows.pop()
        while next_choice[row] < m:
            col = int(preferences[row, next_choice[row]])
            next_choice[row] += 1
            current = col_partner[col]
            if current == -1:
                col_partner[col] = row
                break
            if similarity[row, col] > similarity[current, col]:
                col_partner[col] = row
                free_rows.append(current)
                break
        # else: row exhausted its list and stays unmatched
    return {
        int(row): int(col)
        for col, row in enumerate(col_partner)
        if row != -1
    }


def is_stable(similarity: np.ndarray, assignment: Dict[int, int]) -> bool:
    """Check the no-blocking-pair property of an assignment."""
    n, m = similarity.shape
    row_of_col = {col: row for row, col in assignment.items()}
    for row in range(n):
        assigned_col = assignment.get(row)
        row_score = similarity[row, assigned_col] if assigned_col is not None else -np.inf
        for col in range(m):
            if col == assigned_col:
                continue
            if similarity[row, col] <= row_score:
                continue
            partner = row_of_col.get(col)
            partner_score = (
                similarity[partner, col] if partner is not None else -np.inf
            )
            if similarity[row, col] > partner_score:
                return False
    return True
