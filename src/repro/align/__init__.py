"""Alignment inference and evaluation: similarity, matching, metrics."""

from .blocking import BlockingReport, blocking_report, token_blocking
from .evaluator import (
    EvaluationResult,
    evaluate_by_degree_bucket,
    evaluate_embeddings,
    similarity_for_links,
)
from .matching import greedy_matching, is_stable, stable_matching
from .metrics import (
    AlignmentMetrics,
    bootstrap_confidence_interval,
    evaluate_similarity,
    hits_at_1_from_assignment,
    metrics_from_ranks,
)
from .similarity import (
    chunked_cosine_topk,
    cosine_similarity_matrix,
    csls_similarity_matrix,
    euclidean_distance_matrix,
    rank_of_target,
    topk_indices,
)

__all__ = [
    "chunked_cosine_topk", "cosine_similarity_matrix",
    "csls_similarity_matrix",
    "euclidean_distance_matrix",
    "topk_indices", "rank_of_target",
    "AlignmentMetrics", "metrics_from_ranks", "evaluate_similarity",
    "hits_at_1_from_assignment", "bootstrap_confidence_interval",
    "greedy_matching", "stable_matching", "is_stable",
    "EvaluationResult", "evaluate_embeddings", "similarity_for_links",
    "evaluate_by_degree_bucket",
    "token_blocking", "blocking_report", "BlockingReport",
]
