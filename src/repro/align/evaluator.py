"""End-to-end evaluation of embedding-based aligners on a KG pair split.

Candidate targets follow the paper's protocol: for each test source entity
the model ranks *all test target entities* (the standard DBP15K/SRPRS
evaluation), using cosine similarity over final embeddings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..concurrency import shard_safe
from ..kg.pair import KGPair, Link
from ..obs import metrics, telemetry, trace
from ..obs.shards import run_sharded
from .matching import stable_matching
from .metrics import (
    AlignmentMetrics,
    evaluate_similarity,
    hits_at_1_from_assignment,
    metrics_from_ranks,
)
from .similarity import cosine_similarity_matrix, rank_of_target


@dataclass(frozen=True)
class EvaluationResult:
    """Metrics plus optional stable-matching Hits@1 and the raw matrix."""

    metrics: AlignmentMetrics
    stable_hits_at_1: Optional[float] = None

    def __str__(self) -> str:
        base = str(self.metrics)
        if self.stable_hits_at_1 is not None:
            base += f"  stable-H@1={100 * self.stable_hits_at_1:5.1f}"
        return base


def similarity_for_links(embeddings1: np.ndarray, embeddings2: np.ndarray,
                         links: Sequence[Link]) -> tuple[np.ndarray, np.ndarray]:
    """Build the (test sources × test targets) similarity matrix.

    Returns ``(similarity, targets)`` where ``targets[i]`` is the column
    index of row i's ground-truth counterpart.
    """
    links = list(links)
    sources = np.array([e1 for e1, _ in links], dtype=int)
    targets_ids = np.array([e2 for _, e2 in links], dtype=int)
    emb_src = embeddings1[sources]
    emb_tgt = embeddings2[targets_ids]
    similarity = cosine_similarity_matrix(emb_src, emb_tgt)
    targets = np.arange(len(links))
    return similarity, targets


@shard_safe(merges=("obs.metrics.registry", "obs.tracing.tracer"),
            owns=("obs.events.log", "obs.telemetry.stream"), io=True,
            note="io is telemetry emission through the ambient stream; "
                 "shards > 1 forks the obs stack around a ranking pool "
                 "and merges it on join")
def evaluate_embeddings(embeddings1: np.ndarray, embeddings2: np.ndarray,
                        links: Sequence[Link],
                        with_stable_matching: bool = False,
                        csls_k: int = 0,
                        shards: int = 1) -> EvaluationResult:
    """Evaluate entity embeddings against ground-truth links.

    Parameters
    ----------
    csls_k:
        When > 0, re-rank with CSLS using ``csls_k`` nearest neighbors
        instead of plain cosine (hubness correction).
    shards:
        When > 1, rank contiguous row blocks on a thread pool
        (:func:`repro.obs.shards.run_sharded`).  Metrics are
        bitwise-identical to the serial path: per-row ranks are
        independent of the other rows, blocks reassemble by shard
        index, and Hits@k/MRR are computed once from the merged ranks.
        CSLS re-ranking needs the full matrix and column statistics, so
        ``csls_k > 0`` falls back to the serial path.
    """
    if not links:
        raise ValueError("cannot evaluate with zero links")
    shards = max(1, int(shards))
    if shards > 1 and csls_k == 0 and len(links) > 1:
        return _evaluate_sharded(embeddings1, embeddings2, list(links),
                                 with_stable_matching, shards)
    start = time.perf_counter()
    with trace.span("evaluate/rank", links=len(links)):
        similarity, targets = similarity_for_links(embeddings1, embeddings2,
                                                   links)
        if csls_k > 0:
            from .similarity import csls_similarity_matrix
            links = list(links)
            sources = np.array([e1 for e1, _ in links], dtype=int)
            targets_ids = np.array([e2 for _, e2 in links], dtype=int)
            similarity = csls_similarity_matrix(
                embeddings1[sources], embeddings2[targets_ids], k=csls_k
            )
        alignment_metrics = evaluate_similarity(similarity, targets)
    ranking_seconds = time.perf_counter() - start
    metrics.histogram("eval.ranking_seconds").observe(ranking_seconds)
    metrics.counter("eval.rankings").inc()
    metrics.gauge("eval.candidate_set_size").set(similarity.shape[1])
    metrics.gauge("eval.hits_at_1").set(alignment_metrics.hits_at_1)
    telemetry.emit("eval", hits_at_1=alignment_metrics.hits_at_1,
                   hits_at_10=alignment_metrics.hits_at_10,
                   mrr=alignment_metrics.mrr, seconds=ranking_seconds)
    stable = None
    if with_stable_matching:
        with trace.span("evaluate/stable_matching"):
            assignment = stable_matching(similarity)
            stable = hits_at_1_from_assignment(assignment, targets)
    return EvaluationResult(metrics=alignment_metrics, stable_hits_at_1=stable)


def _evaluate_sharded(embeddings1: np.ndarray, embeddings2: np.ndarray,
                      links: Sequence[Link], with_stable_matching: bool,
                      shards: int) -> EvaluationResult:
    """Thread-pool-sharded ranking, metric-identical to the serial path.

    Three choices make the merged result deterministic:

    * rows shard into *contiguous blocks* and each worker ranks its
      block against all targets — ``rank_of_target`` is row-independent,
      so the concatenated ranks (by shard index, not completion order)
      equal the serial ranks;
    * workers compute with raw numpy, *unmetered*; the coordinator
      replicates the serial path's canonical instrumentation after the
      join, so the merged counter/histogram totals match the serial run
      exactly (workers add only shard-scoped extras such as
      ``eval.shard_rows`` and their ``evaluate/shard_rank`` spans);
    * Hits@k/MRR are computed once, on the coordinator, from the merged
      rank vector — never averaged across shards.
    """
    start = time.perf_counter()
    with trace.span("evaluate/rank", links=len(links)):
        sources = np.array([e1 for e1, _ in links], dtype=int)
        targets_ids = np.array([e2 for _, e2 in links], dtype=int)
        a = np.asarray(embeddings1[sources], dtype=np.float64)
        b = np.asarray(embeddings2[targets_ids], dtype=np.float64)
        gemm_start = time.perf_counter()
        eps = 1e-12
        a_norm = a / np.maximum(np.linalg.norm(a, axis=1, keepdims=True), eps)
        b_norm = b / np.maximum(np.linalg.norm(b, axis=1, keepdims=True), eps)
        n, m = a_norm.shape[0], b_norm.shape[0]
        size = -(-n // shards)
        bounds = [(lo, min(lo + size, n)) for lo in range(0, n, size)]

        def rank_block(bound):
            lo, hi = bound
            with trace.span("evaluate/shard_rank", rows=hi - lo):
                block = a_norm[lo:hi] @ b_norm.T
                ranks = rank_of_target(block, np.arange(lo, hi))
            metrics.counter("eval.shard_rows").inc(hi - lo)
            return ranks, (block if with_stable_matching else None)

        parts = run_sharded(rank_block, bounds, shards=len(bounds),
                            label="evaluate")
        ranks = np.concatenate([part[0] for part in parts])
        metrics.counter("similarity.cosine.calls").inc()
        metrics.counter("similarity.cosine.cells").inc(n * m)
        metrics.histogram("similarity.cosine.seconds").observe(
            time.perf_counter() - gemm_start)
        alignment_metrics = metrics_from_ranks(ranks)
    ranking_seconds = time.perf_counter() - start
    metrics.histogram("eval.ranking_seconds").observe(ranking_seconds)
    metrics.counter("eval.rankings").inc()
    metrics.gauge("eval.candidate_set_size").set(m)
    metrics.gauge("eval.hits_at_1").set(alignment_metrics.hits_at_1)
    telemetry.emit("eval", hits_at_1=alignment_metrics.hits_at_1,
                   hits_at_10=alignment_metrics.hits_at_10,
                   mrr=alignment_metrics.mrr, seconds=ranking_seconds,
                   shards=shards)
    stable = None
    if with_stable_matching:
        with trace.span("evaluate/stable_matching"):
            similarity = np.vstack([part[1] for part in parts])
            assignment = stable_matching(similarity)
            stable = hits_at_1_from_assignment(assignment, np.arange(n))
    return EvaluationResult(metrics=alignment_metrics, stable_hits_at_1=stable)


def evaluate_by_degree_bucket(embeddings1: np.ndarray, embeddings2: np.ndarray,
                              pair: KGPair, links: Sequence[Link],
                              buckets: Sequence[tuple[int, int]] = (
                                  (1, 3), (4, 10), (11, 10**9)),
                              ) -> Dict[str, AlignmentMetrics]:
    """Per-degree-bucket metrics (long-tail analysis, Section V-B2).

    Buckets are applied to the *source* entity's relational degree in kg1.
    """
    links = list(links)
    similarity, targets = similarity_for_links(embeddings1, embeddings2, links)
    degrees = np.array([pair.kg1.degree(e1) for e1, _ in links])
    out: Dict[str, AlignmentMetrics] = {}
    from .similarity import rank_of_target
    from .metrics import metrics_from_ranks

    ranks = rank_of_target(similarity, targets)
    for lo, hi in buckets:
        mask = (degrees >= lo) & (degrees <= hi)
        label = f"{lo}~{hi}" if hi < 10**9 else f"{lo}+"
        out[label] = metrics_from_ranks(ranks[mask])
    return out
