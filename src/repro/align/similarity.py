"""Pairwise similarity computations over entity embedding matrices."""

from __future__ import annotations

import time

import numpy as np

from ..concurrency import shard_safe
from ..obs import metrics


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray,
                             eps: float = 1e-12) -> np.ndarray:
    """Cosine similarity between every row of ``a`` and every row of ``b``.

    Parameters
    ----------
    a, b:
        Arrays of shape ``(n, d)`` and ``(m, d)``.

    Returns
    -------
    ``(n, m)`` matrix of cosine similarities in [-1, 1].
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    start = time.perf_counter()
    a_norm = a / np.maximum(np.linalg.norm(a, axis=1, keepdims=True), eps)
    b_norm = b / np.maximum(np.linalg.norm(b, axis=1, keepdims=True), eps)
    result = a_norm @ b_norm.T
    metrics.counter("similarity.cosine.calls").inc()
    metrics.counter("similarity.cosine.cells").inc(result.size)
    metrics.histogram("similarity.cosine.seconds").observe(
        time.perf_counter() - start
    )
    return result


def euclidean_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise L2 distances; ``(n, d) x (m, d) -> (n, m)``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    start = time.perf_counter()
    sq = (
        (a**2).sum(axis=1)[:, None]
        + (b**2).sum(axis=1)[None, :]
        - 2.0 * (a @ b.T)
    )
    result = np.sqrt(np.maximum(sq, 0.0))
    metrics.counter("similarity.euclidean.calls").inc()
    metrics.counter("similarity.euclidean.cells").inc(result.size)
    metrics.histogram("similarity.euclidean.seconds").observe(
        time.perf_counter() - start
    )
    return result


def _topk_rows(similarity: np.ndarray, k: int) -> np.ndarray:
    """Per-row top-k (descending) indices of a score block, unmetered."""
    part = np.argpartition(-similarity, kth=k - 1, axis=1)[:, :k]
    row_scores = np.take_along_axis(similarity, part, axis=1)
    order = np.argsort(-row_scores, axis=1, kind="stable")
    return np.take_along_axis(part, order, axis=1)


def topk_indices(similarity: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest entries per row, sorted descending.

    Returns an ``(n, k)`` integer array (k clipped to the row length).
    """
    n, m = similarity.shape
    k = min(k, m)
    start = time.perf_counter()
    result = _topk_rows(similarity, k)
    metrics.counter("similarity.topk.calls").inc()
    metrics.histogram("similarity.topk.seconds").observe(
        time.perf_counter() - start
    )
    return result


#: Default score-block budget for :func:`chunked_cosine_topk` — 64 MiB
#: of float64 scores (~8M pool entries per row chunk).
DEFAULT_CHUNK_BUDGET_BYTES = 64 << 20


@shard_safe(merges=("obs.metrics.registry",),
            note="pure over its inputs; row blocks shard independently")
def chunked_cosine_topk(a: np.ndarray, b: np.ndarray, k: int,
                        memory_budget_bytes: int = DEFAULT_CHUNK_BUDGET_BYTES,
                        eps: float = 1e-12) -> tuple[np.ndarray, np.ndarray]:
    """Cosine top-k without materialising the full ``(n, m)`` matrix.

    Equivalent to ``topk_indices(cosine_similarity_matrix(a, b), k)`` but
    the score matrix is computed in row blocks sized to
    ``memory_budget_bytes``, so peak memory is ``O(budget + n·k)``
    instead of ``O(n·m)`` — candidate generation scales past DBP15K-size
    pools (a 100k x 100k float64 matrix would be 80 GB; the default
    budget streams it in 64 MiB blocks).

    A single-chunk run issues the identical GEMM call as the unchunked
    path (bitwise-equal scores); smaller blocks may route through a
    different BLAS kernel whose summation order differs by ~1 ulp, which
    leaves rankings — and therefore candidate sets — unchanged.

    Returns
    -------
    ``(indices, scores)`` — ``(n, k)`` arrays, descending per row.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    if memory_budget_bytes <= 0:
        raise ValueError("memory_budget_bytes must be positive")
    n, m = a.shape[0], b.shape[0]
    k = min(k, m)
    start = time.perf_counter()
    a_norm = a / np.maximum(np.linalg.norm(a, axis=1, keepdims=True), eps)
    b_norm = b / np.maximum(np.linalg.norm(b, axis=1, keepdims=True), eps)
    rows_per_chunk = max(1, memory_budget_bytes // (m * a.itemsize))
    indices = np.empty((n, k), dtype=np.intp)
    scores = np.empty((n, k), dtype=np.float64)
    chunks = 0
    for lo in range(0, n, rows_per_chunk):
        hi = min(lo + rows_per_chunk, n)
        block = a_norm[lo:hi] @ b_norm.T
        top = _topk_rows(block, k)
        indices[lo:hi] = top
        scores[lo:hi] = np.take_along_axis(block, top, axis=1)
        chunks += 1
    metrics.counter("similarity.chunked_topk.calls").inc()
    metrics.counter("similarity.chunked_topk.chunks").inc(chunks)
    metrics.counter("similarity.chunked_topk.cells").inc(n * m)
    metrics.histogram("similarity.chunked_topk.seconds").observe(
        time.perf_counter() - start
    )
    return indices, scores


def csls_similarity_matrix(a: np.ndarray, b: np.ndarray,
                           k: int = 10) -> np.ndarray:
    """Cross-domain Similarity Local Scaling (Lample et al., ICLR 2018).

    ``csls(x, y) = 2 cos(x, y) - r_b(x) - r_a(y)`` where ``r`` is the mean
    cosine similarity to the k nearest cross-domain neighbors.  Penalises
    hubs that are close to everything — a standard inference-time
    improvement for embedding-based alignment, complementary to the
    stable-matching post-step discussed in the paper's Section V-B1.
    """
    cosine = cosine_similarity_matrix(a, b)
    start = time.perf_counter()
    k_eff_rows = min(k, cosine.shape[1])
    k_eff_cols = min(k, cosine.shape[0])
    # Top-k means via O(nm) partition instead of O(nm log m) full sorts.
    # The selected block is re-sorted (k log k work on k elements) so the
    # mean accumulates in the same ascending order as the previous
    # full-sort implementation — bitwise-identical output.
    r_rows = np.sort(
        np.partition(cosine, cosine.shape[1] - k_eff_rows, axis=1)
        [:, -k_eff_rows:], axis=1,
    ).mean(axis=1)
    r_cols = np.sort(
        np.partition(cosine, cosine.shape[0] - k_eff_cols, axis=0)
        [-k_eff_cols:, :], axis=0,
    ).mean(axis=0)
    result = 2.0 * cosine - r_rows[:, None] - r_cols[None, :]
    metrics.counter("similarity.csls.calls").inc()
    metrics.counter("similarity.csls.cells").inc(result.size)
    metrics.histogram("similarity.csls.seconds").observe(
        time.perf_counter() - start
    )
    return result


def rank_of_target(similarity: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """1-based rank of each row's ground-truth column under descending score.

    Ties are resolved pessimistically (equal scores rank ahead of the
    target), making the metrics conservative.
    """
    targets = np.asarray(targets)
    target_scores = similarity[np.arange(len(targets)), targets]
    higher = (similarity > target_scores[:, None]).sum(axis=1)
    equal_before = (
        (similarity == target_scores[:, None]).sum(axis=1) - 1
    ).clip(min=0)
    return higher + equal_before + 1
