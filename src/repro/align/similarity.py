"""Pairwise similarity computations over entity embedding matrices."""

from __future__ import annotations

import time

import numpy as np

from ..obs import metrics


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray,
                             eps: float = 1e-12) -> np.ndarray:
    """Cosine similarity between every row of ``a`` and every row of ``b``.

    Parameters
    ----------
    a, b:
        Arrays of shape ``(n, d)`` and ``(m, d)``.

    Returns
    -------
    ``(n, m)`` matrix of cosine similarities in [-1, 1].
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError(f"incompatible shapes {a.shape} and {b.shape}")
    start = time.perf_counter()
    a_norm = a / np.maximum(np.linalg.norm(a, axis=1, keepdims=True), eps)
    b_norm = b / np.maximum(np.linalg.norm(b, axis=1, keepdims=True), eps)
    result = a_norm @ b_norm.T
    metrics.counter("similarity.cosine.calls").inc()
    metrics.counter("similarity.cosine.cells").inc(result.size)
    metrics.histogram("similarity.cosine.seconds").observe(
        time.perf_counter() - start
    )
    return result


def euclidean_distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise L2 distances; ``(n, d) x (m, d) -> (n, m)``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    sq = (
        (a**2).sum(axis=1)[:, None]
        + (b**2).sum(axis=1)[None, :]
        - 2.0 * (a @ b.T)
    )
    return np.sqrt(np.maximum(sq, 0.0))


def topk_indices(similarity: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest entries per row, sorted descending.

    Returns an ``(n, k)`` integer array (k clipped to the row length).
    """
    n, m = similarity.shape
    k = min(k, m)
    start = time.perf_counter()
    part = np.argpartition(-similarity, kth=k - 1, axis=1)[:, :k]
    row_scores = np.take_along_axis(similarity, part, axis=1)
    order = np.argsort(-row_scores, axis=1, kind="stable")
    result = np.take_along_axis(part, order, axis=1)
    metrics.counter("similarity.topk.calls").inc()
    metrics.histogram("similarity.topk.seconds").observe(
        time.perf_counter() - start
    )
    return result


def csls_similarity_matrix(a: np.ndarray, b: np.ndarray,
                           k: int = 10) -> np.ndarray:
    """Cross-domain Similarity Local Scaling (Lample et al., ICLR 2018).

    ``csls(x, y) = 2 cos(x, y) - r_b(x) - r_a(y)`` where ``r`` is the mean
    cosine similarity to the k nearest cross-domain neighbors.  Penalises
    hubs that are close to everything — a standard inference-time
    improvement for embedding-based alignment, complementary to the
    stable-matching post-step discussed in the paper's Section V-B1.
    """
    cosine = cosine_similarity_matrix(a, b)
    k_eff_rows = min(k, cosine.shape[1])
    k_eff_cols = min(k, cosine.shape[0])
    r_rows = np.sort(cosine, axis=1)[:, -k_eff_rows:].mean(axis=1)
    r_cols = np.sort(cosine, axis=0)[-k_eff_cols:, :].mean(axis=0)
    return 2.0 * cosine - r_rows[:, None] - r_cols[None, :]


def rank_of_target(similarity: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """1-based rank of each row's ground-truth column under descending score.

    Ties are resolved pessimistically (equal scores rank ahead of the
    target), making the metrics conservative.
    """
    targets = np.asarray(targets)
    target_scores = similarity[np.arange(len(targets)), targets]
    higher = (similarity > target_scores[:, None]).sum(axis=1)
    equal_before = (
        (similarity == target_scores[:, None]).sum(axis=1) - 1
    ).clip(min=0)
    return higher + equal_before + 1
