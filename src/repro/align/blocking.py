"""Token blocking — sub-quadratic candidate generation for large KGs.

At the real benchmarks' scale (15K–100K entities per side) the dense
n×m similarity matrices used elsewhere in this package stop being
practical.  The standard remedy (used by entity-matching systems, and by
BERT-INT's name-based candidate stage) is *blocking*: only entity pairs
that share at least one discriminative token are ever compared.

:func:`token_blocking` builds those candidate pairs from texts (entity
names or Algorithm-1 attribute sequences) via an inverted index, skipping
tokens whose posting lists are too long to be discriminative (stop-token
pruning).  Recall/size trade-offs are measured by
:func:`blocking_report`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..kg.pair import Link


def _tokens(text: str) -> Set[str]:
    return set(str(text).lower().split())


def token_blocking(texts1: Sequence[str], texts2: Sequence[str],
                   max_posting: int = 50) -> Set[Tuple[int, int]]:
    """Candidate pairs sharing at least one discriminative token.

    Parameters
    ----------
    texts1, texts2:
        One text per entity (names, or attribute sequences).
    max_posting:
        Tokens appearing in more than this many entities *on either side*
        are treated as stop tokens and generate no pairs — without this,
        one frequent token would reintroduce the quadratic blow-up.

    Returns
    -------
    Set of ``(index1, index2)`` candidate pairs.
    """
    index1: Dict[str, List[int]] = defaultdict(list)
    for i, text in enumerate(texts1):
        for token in _tokens(text):
            index1[token].append(i)
    index2: Dict[str, List[int]] = defaultdict(list)
    for j, text in enumerate(texts2):
        for token in _tokens(text):
            index2[token].append(j)

    pairs: Set[Tuple[int, int]] = set()
    for token, postings1 in index1.items():
        postings2 = index2.get(token)
        if postings2 is None:
            continue
        if len(postings1) > max_posting or len(postings2) > max_posting:
            continue
        for i in postings1:
            for j in postings2:
                pairs.add((i, j))
    return pairs


@dataclass(frozen=True)
class BlockingReport:
    """Quality/size statistics of a blocking run."""

    num_pairs: int
    total_possible: int
    recall: float       # fraction of true links surviving the blocking

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the quadratic comparison space avoided."""
        if self.total_possible == 0:
            return 0.0
        return 1.0 - self.num_pairs / self.total_possible


def blocking_report(candidates: Set[Tuple[int, int]],
                    true_links: Sequence[Link],
                    n1: int, n2: int) -> BlockingReport:
    """Measure a candidate set against the ground truth."""
    true_links = list(true_links)
    if true_links:
        surviving = sum(1 for link in true_links if tuple(link) in candidates)
        recall = surviving / len(true_links)
    else:
        recall = 0.0
    return BlockingReport(
        num_pairs=len(candidates),
        total_possible=n1 * n2,
        recall=recall,
    )
