"""Entity-alignment evaluation metrics: Hits@K and MRR (Section V-A2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from .similarity import rank_of_target


@dataclass(frozen=True)
class AlignmentMetrics:
    """Evaluation result for one method on one dataset."""

    hits_at_1: float
    hits_at_10: float
    mrr: float
    num_pairs: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "H@1": self.hits_at_1,
            "H@10": self.hits_at_10,
            "MRR": self.mrr,
            "pairs": self.num_pairs,
        }

    def __str__(self) -> str:
        return (
            f"H@1={100 * self.hits_at_1:5.1f}  "
            f"H@10={100 * self.hits_at_10:5.1f}  MRR={self.mrr:.2f}"
        )


def metrics_from_ranks(ranks: Sequence[int]) -> AlignmentMetrics:
    """Compute Hits@1/Hits@10/MRR from 1-based ranks of the true targets."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        return AlignmentMetrics(0.0, 0.0, 0.0, 0)
    if (ranks < 1).any():
        raise ValueError("ranks must be 1-based")
    return AlignmentMetrics(
        hits_at_1=float((ranks <= 1).mean()),
        hits_at_10=float((ranks <= 10).mean()),
        mrr=float((1.0 / ranks).mean()),
        num_pairs=int(ranks.size),
    )


def evaluate_similarity(similarity: np.ndarray,
                        targets: np.ndarray) -> AlignmentMetrics:
    """Evaluate a (test-sources × candidate-targets) similarity matrix.

    ``targets[i]`` is the ground-truth column for row ``i``.
    """
    ranks = rank_of_target(similarity, targets)
    return metrics_from_ranks(ranks)


def bootstrap_confidence_interval(ranks: Sequence[int], metric: str = "hits1",
                                  confidence: float = 0.95,
                                  n_resamples: int = 1000,
                                  seed: int = 0) -> tuple:
    """Bootstrap CI for an alignment metric over per-pair ranks.

    Useful at this reproduction's scale (hundreds of test pairs), where a
    1–2 point Hits@1 difference can be within noise.

    Parameters
    ----------
    ranks:
        1-based ranks of the true targets (one per test pair).
    metric:
        'hits1', 'hits10', or 'mrr'.
    confidence:
        Two-sided confidence level.

    Returns
    -------
    (point_estimate, lower, upper)
    """
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        return (0.0, 0.0, 0.0)
    estimators = {
        "hits1": lambda r: float((r <= 1).mean()),
        "hits10": lambda r: float((r <= 10).mean()),
        "mrr": lambda r: float((1.0 / r).mean()),
    }
    if metric not in estimators:
        raise ValueError(f"unknown metric {metric!r}")
    estimate = estimators[metric](ranks)
    rng = np.random.default_rng(seed)
    resampled = np.empty(n_resamples)
    for i in range(n_resamples):
        sample = ranks[rng.integers(len(ranks), size=len(ranks))]
        resampled[i] = estimators[metric](sample)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(resampled, [alpha, 1.0 - alpha])
    return (estimate, float(lower), float(upper))


def hits_at_1_from_assignment(assignment: Dict[int, int],
                              targets: np.ndarray) -> float:
    """Hits@1 of a hard 1-1 assignment (e.g. stable matching output).

    Rows missing from the assignment count as misses; only Hits@1 is
    defined for hard matchings (the paper notes CEA "can only get Hits@1").
    """
    targets = np.asarray(targets)
    if targets.size == 0:
        return 0.0
    correct = sum(
        1 for row, target in enumerate(targets)
        if assignment.get(row) == target
    )
    return correct / len(targets)
