"""SDEA reproduction — Semantics Driven Embedding Learning for Entity Alignment.

Reproduces Zhong et al., ICDE 2022, end to end on a from-scratch numpy
stack.  Top-level convenience re-exports::

    from repro import SDEA, SDEAConfig, build_dataset

    pair = build_dataset("dbp15k/zh_en")
    split = pair.split()
    model = SDEA(SDEAConfig())
    model.fit(pair, split)
    print(model.evaluate(split.test).metrics)
"""

from . import obs
from .align import AlignmentMetrics, EvaluationResult, evaluate_embeddings
from .core import SDEA, SDEAConfig
from .datasets import available_datasets, build_dataset
from .kg import KGPair, KnowledgeGraph

__version__ = "1.0.0"

__all__ = [
    "SDEA", "SDEAConfig",
    "build_dataset", "available_datasets",
    "KnowledgeGraph", "KGPair",
    "AlignmentMetrics", "EvaluationResult", "evaluate_embeddings",
    "obs",
    "__version__",
]
