"""Shared finding/report plumbing for the analysis tools.

``repro check-model`` (graphcheck) and ``repro ir`` both report typed
findings; before this module each tool carried its own dataclass and
text/JSON rendering (as :mod:`repro.analysis.lint` and
:mod:`repro.analysis.shapes` still do for their file- and
method-anchored formats).  :class:`Finding` is the one record both
dynamic tools share:

* graphcheck findings use a bare ``kind`` (``unreachable-parameter``)
  and render exactly as the historical ``GraphIssue.format`` did —
  ``[severity] kind: message`` — golden-pinned by the tests;
* IR findings add a catalogue ``code`` (``G001``–``G006``) and a
  ``where`` location (module path / node labels), rendering as
  ``[severity] G004 fusion-opportunity: ... (at Module/Path)``.

Severities: ``error`` and ``warning`` gate (nonzero exit, counted by
:func:`gate_findings`); ``info`` records optimisation opportunities
that must not fail a build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Finding", "GATING_SEVERITIES", "gate_findings", "count_findings",
    "filter_findings", "format_findings_text", "findings_to_json",
]

#: Severities that fail a gate; ``info`` findings are advisory.
GATING_SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One typed finding from a dynamic analysis tool."""

    kind: str           # machine tag: "dead-op", "unreachable-parameter"
    severity: str       # "error" | "warning" | "info"
    message: str
    code: str = ""      # catalogue code ("G002"); empty for graphcheck
    where: str = ""     # location: module path, node labels, ...

    def format(self) -> str:
        prefix = f"{self.code} " if self.code else ""
        text = f"[{self.severity}] {prefix}{self.kind}: {self.message}"
        if self.where:
            text += f" (at {self.where})"
        return text

    def to_dict(self) -> Dict[str, str]:
        out = {"kind": self.kind, "severity": self.severity,
               "message": self.message}
        if self.code:
            out["code"] = self.code
        if self.where:
            out["where"] = self.where
        return out


def gate_findings(findings: Iterable[Finding]) -> List[Finding]:
    """The subset of findings that should fail a gate (error/warning)."""
    return [f for f in findings if f.severity in GATING_SEVERITIES]


def count_findings(findings: Iterable[Finding]) -> Dict[str, int]:
    """``{code-or-kind: count}`` summary of a finding list."""
    out: Dict[str, int] = {}
    for finding in findings:
        key = finding.code or finding.kind
        out[key] = out.get(key, 0) + 1
    return out


def filter_findings(findings: Sequence[Finding],
                    select: Optional[Sequence[str]] = None,
                    ignore: Optional[Sequence[str]] = None) -> List[Finding]:
    """Apply ``--select`` / ``--ignore`` code filters (codes or kinds)."""
    wanted = {c.upper() for c in select} if select else None
    skipped = {c.upper() for c in ignore} if ignore else set()

    def keys(finding: Finding) -> set:
        return {finding.code.upper(), finding.kind.upper()} - {""}

    out = []
    for finding in findings:
        k = keys(finding)
        if wanted is not None and not (k & wanted):
            continue
        if k & skipped:
            continue
        out.append(finding)
    return out


def format_findings_text(findings: Sequence[Finding],
                         indent: str = "") -> str:
    """One line per finding plus a count summary (shared text reporter)."""
    lines = [indent + finding.format() for finding in findings]
    counts = count_findings(findings)
    if counts:
        summary = ", ".join(f"{key}×{n}" for key, n in sorted(counts.items()))
        lines.append(f"{indent}{len(findings)} finding(s): {summary}")
    else:
        lines.append(f"{indent}0 findings")
    return "\n".join(lines)


def findings_to_json(findings: Sequence[Finding],
                     extra: Optional[Dict[str, object]] = None) -> str:
    """Machine-readable rendering (stable key order, shared JSON reporter)."""
    payload: Dict[str, object] = {
        "counts": count_findings(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    if extra:
        payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)
