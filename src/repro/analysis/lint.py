"""AST-based lint framework with autograd-aware, repo-specific rules.

The hand-rolled autograd engine (:mod:`repro.nn`) fails *silently* when
misused: an in-place numpy write to ``Tensor.data`` inside a ``forward``
bypasses the recorded graph, an unseeded ``np.random`` call breaks
reproducibility, a ``Parameter`` assigned before ``super().__init__()``
never gets registered.  These are exactly the mistakes a type checker
cannot see, so this module encodes them as lint rules.

Framework
---------
Rules are small classes registered with :func:`rule`; each visits a
parsed module and emits :class:`Violation` records.  Suppressions use an
end-of-line marker comment::

    param.data -= self.lr * grad  # repro: noqa[R001] optimizers update in place

``# repro: noqa`` without a rule list suppresses every rule on the line.
Reporters: :func:`format_text` (``path:line:col CODE message``) and
:func:`format_json`.

Rule catalogue (see ``docs/static_analysis.md`` for rationale):

========  =======================  ========
ID        name                     severity
========  =======================  ========
R001      inplace-data-mutation    error
R002      bare-np-random           error
R003      super-init-first         error
R004      param-under-no-grad      error
R005      float64-in-forward       warning
R006      tensor-bool-context      error
R007      tensor-ctor-in-loop      warning
R008      numpy-round-trip         error
R009      single-element-concat    warning
R010      composed-kernel-subgraph warning
R011      manifest-slot-bypass     error
========  =======================  ========
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Violation", "Rule", "LintReport", "rule", "all_rules",
    "lint_source", "lint_file", "lint_paths",
    "format_text", "format_json",
]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]*)\])?")


@dataclass(frozen=True)
class Violation:
    """One lint finding, anchored to a file position."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.severity}] {self.message}")


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``, ``name``, ``severity`` and ``doc`` and
    implement :meth:`check`, yielding ``(node, message)`` pairs.
    """

    id: str = ""
    name: str = ""
    severity: str = "error"
    doc: str = ""

    def check(self, tree: ast.Module) -> Iterable[Tuple[ast.AST, str]]:
        raise NotImplementedError


_RULES: Dict[str, Type[Rule]] = {}


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: register a rule under its ``id``."""
    if not cls.id or cls.id in _RULES:
        raise ValueError(f"rule id missing or duplicate: {cls.id!r}")
    _RULES[cls.id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, ordered by id."""
    return [_RULES[key] for key in sorted(_RULES)]


# ---------------------------------------------------------------------- #
# Shared AST helpers
# ---------------------------------------------------------------------- #
def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` → ``["a", "b", "c"]``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _numpy_aliases(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
    """Names bound to the numpy module and to ``numpy.random``."""
    numpy_names: Set[str] = set()
    random_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_names.add(alias.asname or "numpy")
                elif alias.name == "numpy.random" and alias.asname:
                    random_names.add(alias.asname)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_names.add(alias.asname or "random")
    return numpy_names, random_names


def _functions_named(tree: ast.Module, name: str) -> List[ast.FunctionDef]:
    return [node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == name]


def _is_data_or_grad_attr(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr in ("data", "grad")


# ---------------------------------------------------------------------- #
# R001 — in-place mutation of Tensor.data / Tensor.grad
# ---------------------------------------------------------------------- #
@rule
class InplaceDataMutation(Rule):
    """Writes through ``.data``/``.grad`` bypass the autograd graph.

    ``x.data[...] = v``, ``x.data -= g`` and ``x.grad *= s`` mutate the
    raw numpy buffer without recording a backward function; gradients
    computed afterwards are silently wrong.  Optimizers *do* update
    parameters in place by design — those sites carry a justified
    ``# repro: noqa[R001]``.
    """

    id = "R001"
    name = "inplace-data-mutation"
    severity = "error"
    doc = ("in-place numpy mutation of Tensor.data/.grad bypasses "
           "autograd; compute a new tensor instead (or noqa in "
           "optimizer/serialisation code where it is the point)")

    def check(self, tree: ast.Module):
        for node in ast.walk(tree):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for target in targets:
                # x.data[...] = v  /  x.grad[i] += v
                if isinstance(target, ast.Subscript) and \
                        _is_data_or_grad_attr(target.value):
                    yield (node, self._message(target.value))
                # x.data -= g (augmented only; plain `x.grad = None` is
                # the engine's own reset idiom and stays legal)
                elif isinstance(node, ast.AugAssign) and \
                        _is_data_or_grad_attr(target):
                    yield (node, self._message(target))

    @staticmethod
    def _message(attr: ast.Attribute) -> str:
        chain = _attr_chain(attr)
        expr = ".".join(chain) if chain else f"<expr>.{attr.attr}"
        return (f"in-place mutation of `{expr}` bypasses autograd; "
                "build a new Tensor via recorded ops instead")


# ---------------------------------------------------------------------- #
# R002 — bare np.random outside seeded-RNG helpers
# ---------------------------------------------------------------------- #
#: Legacy global-state functions of numpy.random; any call is
#: irreproducible (shared hidden state) and therefore flagged.
_LEGACY_RANDOM = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "binomial", "poisson", "beta", "gamma", "exponential",
    "laplace", "lognormal", "multinomial", "multivariate_normal",
    "get_state", "set_state", "bytes", "random_integers",
})


@rule
class BareNpRandom(Rule):
    """Unseeded randomness destroys run-to-run reproducibility.

    Flags legacy global-state calls (``np.random.rand`` and friends)
    and ``np.random.default_rng()`` called *without* a seed.  Passing a
    seed (``np.random.default_rng(config.seed)``) or threading an
    explicit ``np.random.Generator`` is the sanctioned pattern.
    """

    id = "R002"
    name = "bare-np-random"
    severity = "error"
    doc = ("bare np.random.* call (legacy global state or unseeded "
           "default_rng()); thread a seeded np.random.Generator instead")

    def check(self, tree: ast.Module):
        numpy_names, random_names = _numpy_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if not chain:
                continue
            # Normalise to the path below `numpy.random`.
            if len(chain) >= 3 and chain[0] in numpy_names \
                    and chain[1] == "random":
                tail = chain[2:]
            elif len(chain) >= 2 and chain[0] in random_names:
                tail = chain[1:]
            else:
                continue
            if len(tail) != 1:
                continue
            fn = tail[0]
            if fn in _LEGACY_RANDOM:
                yield (node, f"legacy global-state call np.random.{fn}(); "
                             "use a seeded np.random.default_rng(seed)")
            elif fn == "default_rng" and not node.args and not node.keywords:
                yield (node, "np.random.default_rng() without a seed is "
                             "irreproducible; pass an explicit seed")


# ---------------------------------------------------------------------- #
# R003 — Module subclasses: super().__init__() before parameters
# ---------------------------------------------------------------------- #
def _is_super_init_call(node: ast.AST) -> bool:
    """Matches ``super().__init__(...)`` (as an expression statement)."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__init__"
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super")


def _is_parameter_call(node: ast.AST) -> bool:
    """Matches ``Parameter(...)`` / ``nn.Parameter(...)`` calls."""
    if not isinstance(node, ast.Call):
        return False
    chain = _attr_chain(node.func)
    return bool(chain) and chain[-1] == "Parameter"


@rule
class SuperInitFirst(Rule):
    """Parameters assigned before ``super().__init__()`` vanish.

    ``Module.__setattr__`` registers parameters into ``_parameters``,
    which only exists after ``Module.__init__`` ran.  Assigning a
    ``Parameter`` first either crashes or (with ``setdefault``
    fallbacks) leaves the module half-registered; the optimizer then
    never sees the weight and it silently never trains.
    """

    id = "R003"
    name = "super-init-first"
    severity = "error"
    doc = ("Module subclass assigns a Parameter before (or without) "
           "calling super().__init__()")

    def check(self, tree: ast.Module):
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            init = next(
                (item for item in cls.body
                 if isinstance(item, ast.FunctionDef)
                 and item.name == "__init__"),
                None,
            )
            if init is None:
                continue
            super_line = None
            for node in ast.walk(init):
                if _is_super_init_call(node):
                    super_line = node.lineno
                    break
            for node in ast.walk(init):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                value = node.value
                if value is None or not _is_parameter_call(value):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                assigns_self = any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name) and t.value.id == "self"
                    for t in targets
                )
                if not assigns_self:
                    continue
                if super_line is None:
                    yield (node, f"class {cls.name} assigns a Parameter in "
                                 "__init__ but never calls "
                                 "super().__init__(); the parameter is "
                                 "never registered")
                elif node.lineno < super_line:
                    yield (node, f"class {cls.name} assigns a Parameter "
                                 "before super().__init__() "
                                 f"(line {super_line}); registration "
                                 "dicts do not exist yet")


# ---------------------------------------------------------------------- #
# R004 — Parameter created under no_grad
# ---------------------------------------------------------------------- #
@rule
class ParamUnderNoGrad(Rule):
    """A ``Parameter`` born inside ``no_grad`` still claims to train.

    ``Parameter`` forces ``requires_grad=True``, but every op applied to
    it inside the ``no_grad`` block records nothing — downstream code
    sees a trainable leaf whose gradients never arrive.  Creating
    trainable state inside an evaluation context is always a bug.
    """

    id = "R004"
    name = "param-under-no-grad"
    severity = "error"
    doc = "Parameter(...) created inside a `with no_grad():` block"

    def check(self, tree: ast.Module):
        for node in ast.walk(tree):
            if not isinstance(node, ast.With):
                continue
            if not any(self._is_no_grad(item.context_expr)
                       for item in node.items):
                continue
            for inner in ast.walk(node):
                if _is_parameter_call(inner):
                    yield (inner, "Parameter created under no_grad(); it "
                                  "will never receive gradients despite "
                                  "requires_grad=True")

    @staticmethod
    def _is_no_grad(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):
            expr = expr.func
        chain = _attr_chain(expr)
        return bool(chain) and chain[-1] == "no_grad"


# ---------------------------------------------------------------------- #
# R005 — hard-coded float64 in forward hot paths
# ---------------------------------------------------------------------- #
@rule
class Float64InForward(Rule):
    """Hot-path dtype must stay centrally configurable.

    ``forward`` runs per batch; a hard-coded ``np.float64`` cast there
    both allocates a copy on every call and pins the hot path to one
    dtype, defeating any future float32/mixed-precision backend.  Use
    ``repro.nn.DEFAULT_DTYPE`` (or hoist the cast to ``__init__``).
    """

    id = "R005"
    name = "float64-in-forward"
    severity = "warning"
    doc = ("hard-coded float64 literal inside a forward method; use "
           "repro.nn.DEFAULT_DTYPE so the hot-path dtype stays "
           "centrally configurable")

    def check(self, tree: ast.Module):
        for fn in _functions_named(tree, "forward"):
            for node in ast.walk(fn):
                if isinstance(node, ast.Attribute) \
                        and node.attr == "float64":
                    yield (node, "np.float64 hard-coded in forward; use "
                                 "repro.nn.DEFAULT_DTYPE")
                elif isinstance(node, ast.Constant) \
                        and node.value == "float64":
                    yield (node, "'float64' dtype string hard-coded in "
                                 "forward; use repro.nn.DEFAULT_DTYPE")


# ---------------------------------------------------------------------- #
# R006 — Tensor comparison / truthiness in bool context
# ---------------------------------------------------------------------- #
#: Tensor methods that return a Tensor — a chain ending in one of these
#: applied to a tracked tensor stays tensor-valued.
_TENSOR_METHODS = frozenset({
    "sum", "mean", "max", "exp", "log", "sqrt", "tanh", "sigmoid", "relu",
    "abs", "clip_min", "transpose", "swapaxes", "reshape", "matmul",
    "take", "detach",
})

#: Constructors whose result is a Tensor.
_TENSOR_CTORS = frozenset({"Tensor", "Parameter"})


@rule
class TensorBoolContext(Rule):
    """Tensors don't collapse to a single truth value.

    ``Tensor.__gt__`` and friends return *numpy arrays*; using them in
    ``if``/``while``/``assert``/``bool()`` either raises numpy's
    "ambiguous truth value" at runtime (multi-element) or silently
    tests the wrong thing (single element: truthiness of the value, not
    of the intended condition).  Compare ``.item()`` / reduce with
    ``.any()``/``.all()`` instead.

    Detection is intra-function: names assigned from ``Tensor(...)`` /
    ``Parameter(...)``, from parameters annotated ``Tensor``, or from
    tensor-method chains on tracked names are considered tensors.
    """

    id = "R006"
    name = "tensor-bool-context"
    severity = "error"
    doc = ("Tensor (or Tensor comparison) used in a bool context; use "
           ".item(), .any() or .all() to collapse it explicitly")

    def check(self, tree: ast.Module):
        for fn in ast.walk(tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(fn)

    # -- per-function flow -------------------------------------------- #
    def _check_function(self, fn: ast.FunctionDef):
        tracked: Set[str] = set()
        args = list(fn.args.posonlyargs) + list(fn.args.args) \
            + list(fn.args.kwonlyargs)
        for arg in args:
            if arg.annotation is not None and \
                    self._annotation_is_tensor(arg.annotation):
                tracked.add(arg.arg)

        # Single forward pass in source order: track assignments, then
        # flag bool contexts that use a tracked expression.
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and \
                    self._is_tensor_expr(node.value, tracked):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tracked.add(target.id)
            elif isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                if (node.value is not None
                        and self._is_tensor_expr(node.value, tracked)) \
                        or self._annotation_is_tensor(node.annotation):
                    tracked.add(node.target.id)

        for node in ast.walk(fn):
            for test in self._bool_contexts(node):
                culprit = self._tensor_in_bool_expr(test, tracked)
                if culprit is not None:
                    yield (test, culprit)

    @staticmethod
    def _bool_contexts(node: ast.AST) -> List[ast.AST]:
        if isinstance(node, (ast.If, ast.While)):
            return [node.test]
        if isinstance(node, ast.Assert):
            return [node.test]
        if isinstance(node, ast.IfExp):
            return [node.test]
        if isinstance(node, ast.BoolOp):
            return list(node.values)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return [node.operand]
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "bool" and len(node.args) == 1:
            return [node.args[0]]
        return []

    def _tensor_in_bool_expr(self, expr: ast.AST,
                             tracked: Set[str]) -> Optional[str]:
        """Message if ``expr`` is tensor-valued or a tensor comparison."""
        if isinstance(expr, ast.Compare):
            # Identity/membership tests (`is`, `in`) return plain bools;
            # only value comparisons dispatch to Tensor.__gt__ & co.
            if all(isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn))
                   for op in expr.ops):
                return None
            operands = [expr.left] + list(expr.comparators)
            for operand in operands:
                if self._is_tensor_expr(operand, tracked):
                    return ("comparison involving a Tensor returns a numpy "
                            "array; its truth value is ambiguous — compare "
                            ".item() or reduce with .any()/.all()")
            return None
        if self._is_tensor_expr(expr, tracked):
            return ("Tensor used directly in a bool context; use .item(), "
                    ".any() or .all()")
        return None

    def _is_tensor_expr(self, expr: ast.AST, tracked: Set[str]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in tracked
        if isinstance(expr, ast.Call):
            chain = _attr_chain(expr.func)
            if chain and chain[-1] in _TENSOR_CTORS:
                return True
            # tracked.method(...) chains that stay tensor-valued
            if isinstance(expr.func, ast.Attribute) \
                    and expr.func.attr in _TENSOR_METHODS:
                return self._is_tensor_expr(expr.func.value, tracked)
            return False
        if isinstance(expr, ast.BinOp):
            return self._is_tensor_expr(expr.left, tracked) \
                or self._is_tensor_expr(expr.right, tracked)
        if isinstance(expr, ast.UnaryOp):
            return self._is_tensor_expr(expr.operand, tracked)
        return False

    @staticmethod
    def _annotation_is_tensor(annotation: ast.AST) -> bool:
        if isinstance(annotation, ast.Name):
            return annotation.id in _TENSOR_CTORS
        if isinstance(annotation, ast.Constant) \
                and isinstance(annotation.value, str):
            return annotation.value in _TENSOR_CTORS
        if isinstance(annotation, ast.Attribute):
            return annotation.attr in _TENSOR_CTORS
        return False


# ---------------------------------------------------------------------- #
# R007 — Tensor construction inside a per-item loop in forward
# ---------------------------------------------------------------------- #
@rule
class TensorCtorInLoop(Rule):
    """Constructing tensors item-by-item in a hot loop is quadratic pain.

    ``Tensor(...)`` / ``Parameter(...)`` inside a ``for``/``while`` body
    of a ``forward`` method allocates (and, for ``Parameter``, registers
    trainable state!) once per iteration per call.  Build the full array
    first and wrap it once outside the loop — the GRU wraps its initial
    hidden state *before* its timestep loop for exactly this reason.
    """

    id = "R007"
    name = "tensor-ctor-in-loop"
    severity = "warning"
    doc = ("Tensor/Parameter constructed inside a loop in a forward "
           "method; hoist the wrap out of the loop and build the array "
           "in one shot")

    def check(self, tree: ast.Module):
        for fn in _functions_named(tree, "forward"):
            for loop in ast.walk(fn):
                if not isinstance(loop, (ast.For, ast.While)):
                    continue
                for node in ast.walk(loop):
                    if node is loop:
                        continue
                    # Nested loops are visited in their own right.
                    if isinstance(node, ast.Call):
                        chain = _attr_chain(node.func)
                        if chain and chain[-1] in _TENSOR_CTORS:
                            yield (node, f"{chain[-1]}(...) constructed "
                                         "inside a loop in forward; hoist "
                                         "the construction out of the loop")


# ---------------------------------------------------------------------- #
# R008 — numpy round-trip re-wrapped into a Tensor in forward
# ---------------------------------------------------------------------- #
@rule
class NumpyRoundTrip(Rule):
    """``Tensor(x.data ...)`` silently detaches the autograd graph.

    Reading ``.data`` (or calling ``.numpy()``) drops the recorded
    parents; wrapping the result back into a ``Tensor`` inside a
    ``forward`` produces a leaf that *looks* like a differentiable
    intermediate but receives no gradient.  If detaching is intended,
    call ``.detach()`` so the intent is explicit (and greppable).
    """

    id = "R008"
    name = "numpy-round-trip"
    severity = "error"
    doc = ("Tensor(...) wrapping a .data/.numpy() round-trip inside a "
           "forward method silently detaches the graph; use recorded "
           "ops, or .detach() if cutting the graph is intended")

    def check(self, tree: ast.Module):
        for fn in _functions_named(tree, "forward"):
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                chain = _attr_chain(node.func)
                if not chain or chain[-1] not in _TENSOR_CTORS:
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    culprit = self._round_trip(arg)
                    if culprit:
                        yield (node, f"{chain[-1]}(...) wraps `{culprit}` "
                                     "in forward; the autograd graph is "
                                     "silently detached at this point")
                        break

    @staticmethod
    def _round_trip(expr: ast.AST) -> Optional[str]:
        """Dotted source of the first .data / .numpy() use inside expr."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and node.attr == "data":
                chain = _attr_chain(node)
                return ".".join(chain) if chain else "<expr>.data"
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "numpy":
                chain = _attr_chain(node.func)
                return (".".join(chain) + "()") if chain else "<expr>.numpy()"
        return None


# ---------------------------------------------------------------------- #
# R009 — concatenate/stack over a single-element sequence
# ---------------------------------------------------------------------- #
@rule
class SingleElementConcat(Rule):
    """Concat/stack of one tensor is a no-op wearing an op's costume.

    ``concatenate([x], axis=-1)`` copies ``x`` and records a backward
    for nothing; ``stack([x])`` is ``reshape``.  Usually the second
    operand got lost in a refactor — which is a silent shape bug, not a
    style issue, when the consumer expected the doubled width.
    """

    id = "R009"
    name = "single-element-concat"
    severity = "warning"
    doc = ("concatenate/stack called with a single-element list/tuple; "
           "either a no-op copy or a lost operand from a refactor")

    _FUNCS = frozenset({"concatenate", "stack"})

    def check(self, tree: ast.Module):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            chain = _attr_chain(node.func)
            if not chain or chain[-1] not in self._FUNCS:
                continue
            first = node.args[0]
            if isinstance(first, (ast.List, ast.Tuple)) \
                    and len(first.elts) == 1 \
                    and not isinstance(first.elts[0], ast.Starred):
                yield (node, f"{chain[-1]}() over a single-element "
                             "sequence is a no-op copy; pass the tensor "
                             "directly or restore the missing operand")


# ---------------------------------------------------------------------- #
# R010 — hand-composed subgraphs the fused-kernel registry covers
# ---------------------------------------------------------------------- #
@rule
class ComposedKernelSubgraph(Rule):
    """Composed softmax/log-softmax/layer-norm/GRU in a forward method.

    The fused kernel registry (:mod:`repro.nn.kernels`) implements these
    with identical gradients and a fraction of the memory traffic; the
    dynamic IR pass G004 finds the same shapes at runtime.  A composed
    implementation in ``forward`` is either a site that should call the
    registry-gated helpers (``repro.nn.functional.softmax`` & co.) or a
    reference fallback — the fallbacks carry a justified
    ``# repro: noqa[R010]``.
    """

    id = "R010"
    name = "composed-kernel-subgraph"
    severity = "warning"
    doc = ("hand-composed softmax/log-softmax/layer-norm/GRU subgraph in "
           "a forward method; covered by the fused kernel registry "
           "(repro.nn.kernels) — call the functional helpers, or noqa "
           "for the composed reference path")

    def check(self, tree: ast.Module):
        for fn in _functions_named(tree, "forward"):
            yield from self._softmax_like(fn)
            yield from self._layer_norm(fn)
            yield from self._gru(fn)

    # -- helpers -------------------------------------------------------- #
    @staticmethod
    def _is_method_call(expr: ast.AST, name: str,
                        require_no_args: bool = True) -> bool:
        """``<expr>.name()`` — tensor-method shape, not ``np.name(x)``."""
        return (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == name
                and (not require_no_args or not expr.args))

    @classmethod
    def _assigned_from(cls, fn: ast.FunctionDef, predicate) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and predicate(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _softmax_like(self, fn: ast.FunctionDef):
        is_exp = lambda e: self._is_method_call(e, "exp")  # noqa: E731
        exp_names = self._assigned_from(fn, is_exp)

        def exp_value(expr: ast.AST) -> bool:
            return is_exp(expr) or (isinstance(expr, ast.Name)
                                    and expr.id in exp_names)

        def sum_of_exp(expr: ast.AST) -> bool:
            return (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "sum"
                    and exp_value(expr.func.value))

        sum_names = self._assigned_from(fn, sum_of_exp)

        def log_of_sum(expr: ast.AST) -> bool:
            if not self._is_method_call(expr, "log"):
                return False
            receiver = expr.func.value
            return sum_of_exp(receiver) or (
                isinstance(receiver, ast.Name) and receiver.id in sum_names)

        for node in ast.walk(fn):
            if not isinstance(node, ast.BinOp):
                continue
            if isinstance(node.op, ast.Div) and exp_value(node.left) \
                    and sum_of_exp(node.right):
                yield (node, "hand-composed softmax (exp / exp.sum) in "
                             "forward; call repro.nn.functional.softmax "
                             "(kernels.fused_softmax under use_kernels)")
            elif isinstance(node.op, ast.Sub) and log_of_sum(node.right):
                yield (node, "hand-composed log-softmax "
                             "(x - sum(exp).log()) in forward; call "
                             "repro.nn.functional.log_softmax")

    def _layer_norm(self, fn: ast.FunctionDef):
        has_mean = any(
            self._is_method_call(node, "mean", require_no_args=False)
            for node in ast.walk(fn)
        )
        if not has_mean:
            return
        for node in ast.walk(fn):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div) \
                    and self._is_method_call(node.right, "sqrt"):
                yield (node, "hand-composed layer-norm (centered / "
                             "var.sqrt() next to .mean()) in forward; "
                             "covered by kernels.fused_layer_norm")

    def _gru(self, fn: ast.FunctionDef):
        sigmoids = sum(1 for node in ast.walk(fn)
                       if self._is_method_call(node, "sigmoid"))
        tanhs = sum(1 for node in ast.walk(fn)
                    if self._is_method_call(node, "tanh"))
        if sigmoids >= 2 and tanhs >= 1:
            yield (fn, "forward composes GRU-style gates "
                       f"({sigmoids}× sigmoid, {tanhs}× tanh); covered "
                       "by kernels.fused_gru_cell / fused_gru_sequence")


# ---------------------------------------------------------------------- #
# R011 — direct manifest-slot assignment bypassing the installer
# ---------------------------------------------------------------------- #
@rule
class ManifestSlotBypass(Rule):
    """Rebinding a registered global slot outside its sanctioned writers.

    The concurrency manifest (:data:`repro.concurrency.MANIFEST`)
    declares every process-global slot together with the only functions
    allowed to rebind it — ``set_registry``, the profiler's
    ``__enter__``/``__exit__`` pair, and so on.  Writing
    ``Tensor.backward = fn`` or ``global _default; _default = x`` from
    anywhere else bypasses the slot's synchronization discipline; the
    effect analyzer reports the same sites interprocedurally as C003,
    this rule catches the plain syntactic shape without needing a
    whole-package scan.
    """

    id = "R011"
    name = "manifest-slot-bypass"
    severity = "error"
    doc = ("direct assignment to a concurrency-manifest slot outside "
           "its sanctioned installer functions; route the write through "
           "the installer listed in repro.concurrency.MANIFEST")

    @staticmethod
    def _slot_tables():
        from ..concurrency import MANIFEST
        class_attr: Dict[Tuple[str, str], Set[str]] = {}
        module_global: Dict[str, Set[str]] = {}
        for slot in MANIFEST:
            basenames = {qualname.split(".")[-1]
                         for _, qualname in slot.installer_pairs()}
            if "." in slot.attr:
                cls, attr = slot.attr.split(".", 1)
                class_attr.setdefault((cls, attr), set()).update(basenames)
            else:
                module_global.setdefault(slot.attr, set()).update(basenames)
        return class_attr, module_global

    def check(self, tree: ast.Module):
        class_attr, module_global = self._slot_tables()

        def visit(node: ast.AST, fn_name: Optional[str],
                  global_names: Set[str]):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn_name = node.name
                global_names = {
                    name for stmt in ast.walk(node)
                    if isinstance(stmt, ast.Global)
                    for name in stmt.names
                }
            for target in self._assign_targets(node):
                yield from self._check_target(
                    target, fn_name, global_names, class_attr, module_global)
            for child in ast.iter_child_nodes(node):
                yield from visit(child, fn_name, global_names)

        yield from visit(tree, None, set())

    @staticmethod
    def _assign_targets(node: ast.AST) -> List[ast.AST]:
        if isinstance(node, ast.Assign):
            return list(node.targets)
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return [node.target] if node.value is not None or \
                isinstance(node, ast.AugAssign) else []
        return []

    @staticmethod
    def _check_target(target, fn_name, global_names, class_attr,
                      module_global):
        chain = _attr_chain(target)
        if chain and len(chain) >= 2:
            key = (chain[-2], chain[-1])
            installers = class_attr.get(key)
            if installers is not None and fn_name not in installers:
                yield (target,
                       f"direct assignment to manifest slot "
                       f"{'.'.join(key)} outside its installers "
                       f"({', '.join(sorted(installers))}); see "
                       f"repro.concurrency.MANIFEST")
        elif isinstance(target, ast.Name) and fn_name is not None \
                and target.id in global_names:
            installers = module_global.get(target.id)
            if installers is not None and fn_name not in installers:
                yield (target,
                       f"global rebind of manifest slot storage "
                       f"{target.id!r} in {fn_name}(), which is not a "
                       f"sanctioned installer "
                       f"({', '.join(sorted(installers))}); see "
                       f"repro.concurrency.MANIFEST")


# ---------------------------------------------------------------------- #
# Running rules over sources
# ---------------------------------------------------------------------- #
def _noqa_map(source: str) -> Dict[int, Optional[Set[str]]]:
    """Line → suppressed rule ids (``None`` means every rule)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group(1)
        if codes is None or not codes.strip():
            out[lineno] = None
        else:
            out[lineno] = {code.strip().upper()
                           for code in codes.split(",") if code.strip()}
    return out


def _suppressed(noqa: Dict[int, Optional[Set[str]]], node: ast.AST,
                rule_id: str) -> bool:
    lines = {getattr(node, "lineno", 0)}
    end = getattr(node, "end_lineno", None)
    if end is not None:
        lines.add(end)
    for lineno in lines:
        codes = noqa.get(lineno, ...)
        if codes is None or (codes is not ... and rule_id in codes):
            return True
    return False


def lint_source(source: str, path: str = "<string>",
                select: Optional[Sequence[str]] = None,
                ignore: Optional[Sequence[str]] = None) -> List[Violation]:
    """Lint one source string; returns violations sorted by position."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(rule="E999", severity="error", path=path,
                          line=exc.lineno or 1, col=exc.offset or 0,
                          message=f"syntax error: {exc.msg}")]
    noqa = _noqa_map(source)
    wanted = {code.upper() for code in select} if select else None
    skipped = {code.upper() for code in ignore} if ignore else set()
    violations: List[Violation] = []
    for rule_cls in all_rules():
        if wanted is not None and rule_cls.id not in wanted:
            continue
        if rule_cls.id in skipped:
            continue
        checker = rule_cls()
        for node, message in checker.check(tree):
            if _suppressed(noqa, node, rule_cls.id):
                continue
            violations.append(Violation(
                rule=rule_cls.id, severity=rule_cls.severity, path=path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            ))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def lint_file(path: Path,
              select: Optional[Sequence[str]] = None,
              ignore: Optional[Sequence[str]] = None) -> List[Violation]:
    """Lint one ``.py`` file."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=str(path), select=select, ignore=ignore)


def _iter_python_files(paths: Sequence) -> List[Path]:
    files: List[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(
                p for p in entry.rglob("*.py")
                if "__pycache__" not in p.parts
                and not any(part.startswith(".") for part in p.parts)
            ))
        elif entry.suffix == ".py":
            files.append(entry)
    return files


@dataclass
class LintReport:
    """Violations plus run metadata, as produced by :func:`lint_paths`."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for violation in self.violations:
            out[violation.rule] = out.get(violation.rule, 0) + 1
        return out


def lint_paths(paths: Sequence,
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None) -> LintReport:
    """Lint files and directories (recursively); the CLI entry point."""
    report = LintReport()
    for file_path in _iter_python_files(paths):
        report.violations.extend(
            lint_file(file_path, select=select, ignore=ignore))
        report.files_checked += 1
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return report


# ---------------------------------------------------------------------- #
# Reporters
# ---------------------------------------------------------------------- #
def format_text(report: LintReport) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [violation.format() for violation in report.violations]
    counts = report.counts()
    if counts:
        summary = ", ".join(f"{rule}×{n}" for rule, n in sorted(counts.items()))
        lines.append(f"{len(report.violations)} violation(s) "
                     f"in {report.files_checked} file(s): {summary}")
    else:
        lines.append(f"0 violations in {report.files_checked} file(s)")
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "files_checked": report.files_checked,
        "counts": report.counts(),
        "violations": [
            {"rule": v.rule, "severity": v.severity, "path": v.path,
             "line": v.line, "col": v.col, "message": v.message}
            for v in report.violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
