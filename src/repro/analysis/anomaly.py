"""Opt-in NaN/Inf anomaly detection with op provenance.

The numpy autograd engine happily propagates a NaN born deep inside a
BiGRU backward pass all the way into the optimizer — the run "works",
the metrics are garbage.  :class:`detect_anomaly` is the substitute for
``torch.autograd.set_detect_anomaly(True)``: while active, every op
created in :mod:`repro.nn.tensor` records *where it came from* (op name
plus a snippet of the creating stack), every forward output and every
backward gradient contribution is checked for NaN/Inf, and the first
anomaly raises :class:`AnomalyError` naming the originating op::

    with detect_anomaly():
        loss = model(batch)
        loss.backward()

    # AnomalyError: NaN/Inf in gradient produced by backward of op 'log'
    # op created at (most recent call last):
    #   File "model.py", line 42, in forward
    #     attn = scores.log()

Wired into training via ``SDEAConfig.detect_anomaly`` and the CLI's
``repro run --detect-anomaly``.  The mode costs one ``np.isfinite``
sweep per op and is therefore opt-in.
"""

from __future__ import annotations

import sys
import traceback
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..nn import tensor as _tensor_module
from ..nn.tensor import Tensor

__all__ = ["AnomalyError", "OpProvenance", "detect_anomaly",
           "is_anomaly_enabled"]

#: Frames from these exact files are engine internals, not user code.
#: (Exact paths, not suffixes — a user's `test_anomaly.py` must survive.)
_INTERNAL_FILES = frozenset({_tensor_module.__file__, __file__})


class AnomalyError(RuntimeError):
    """Raised when a NaN/Inf value or gradient is detected.

    Attributes
    ----------
    provenance:
        The :class:`OpProvenance` of the originating op, when known.
    phase:
        ``"forward"`` or ``"backward"``.
    """

    def __init__(self, message: str,
                 provenance: Optional["OpProvenance"] = None,
                 phase: str = "forward"):
        super().__init__(message)
        self.provenance = provenance
        self.phase = phase


@dataclass(frozen=True)
class OpProvenance:
    """Where an op output was created: op name + creating-stack snippet."""

    op: str
    stack: str

    def format(self) -> str:
        if not self.stack:
            return f"op '{self.op}' (creation stack unavailable)"
        return (f"op '{self.op}' created at "
                f"(most recent call last):\n{self.stack}")


def _stack_snippet(limit: int = 4) -> str:
    """The last ``limit`` non-engine frames, formatted like a traceback."""
    frames = [
        frame for frame in traceback.extract_stack()
        if frame.filename not in _INTERNAL_FILES
    ][-limit:]
    return "".join(traceback.format_list(frames)).rstrip("\n")


def _finite(array: np.ndarray) -> bool:
    return array.dtype.kind not in "fc" or bool(np.all(np.isfinite(array)))


def _describe(array: np.ndarray) -> str:
    nan = int(np.isnan(array).sum())
    inf = int(np.isinf(array).sum())
    return f"{nan} NaN / {inf} Inf over shape {array.shape}"


class _AnomalyState:
    """Process-global patch state; reference-counted for nesting."""

    def __init__(self) -> None:
        self.depth = 0
        self.original_make_child = None
        self.original_dispatch = None


_STATE = _AnomalyState()


def is_anomaly_enabled() -> bool:
    """True while at least one :class:`detect_anomaly` context is active."""
    return _STATE.depth > 0


def _wrapped_make_child(self, data, parents, backward):
    """Op-creation hook: record provenance, reject non-finite outputs."""
    out = _STATE.original_make_child(self, data, parents, backward)
    op = sys._getframe(1).f_code.co_name
    provenance = OpProvenance(op=op, stack=_stack_snippet())
    out._ctx = provenance
    if not _finite(out.data):
        raise AnomalyError(
            f"NaN/Inf in forward output of {provenance.format()}\n"
            f"({_describe(out.data)})",
            provenance=provenance, phase="forward",
        )
    return out


def _wrapped_dispatch(self, grad, grads):
    """Backward hook: reject non-finite gradient contributions.

    Mirrors ``Tensor._backward_dispatch``'s routing so each parent
    contribution can be checked *before* it is merged — the raising op
    is then exactly the one whose backward produced the bad values.
    """
    provenance = self._ctx
    if not _finite(np.asarray(grad)):
        where = provenance.format() if provenance else "an untracked op"
        raise AnomalyError(
            f"NaN/Inf in incoming gradient of {where}\n"
            f"({_describe(np.asarray(grad))})",
            provenance=provenance, phase="backward",
        )
    contributions = self._backward(grad)
    for index, (parent, contribution) in enumerate(
            zip(self._parents, contributions)):
        if contribution is None or not (
            parent.requires_grad or parent._backward is not None
        ):
            continue
        if not _finite(np.asarray(contribution)):
            where = provenance.format() if provenance else "an untracked op"
            raise AnomalyError(
                f"NaN/Inf in gradient produced by backward of {where}\n"
                f"(contribution to parent {index} of shape "
                f"{parent.shape}: {_describe(np.asarray(contribution))})",
                provenance=provenance, phase="backward",
            )
        key = id(parent)
        if key in grads:
            grads[key] = grads[key] + contribution
        else:
            grads[key] = contribution


class detect_anomaly:
    """Context manager enabling anomaly detection (reentrant)."""

    def __enter__(self) -> "detect_anomaly":
        if _STATE.depth == 0:
            _STATE.original_make_child = Tensor._make_child
            _STATE.original_dispatch = Tensor._backward_dispatch
            Tensor._make_child = _wrapped_make_child
            Tensor._backward_dispatch = _wrapped_dispatch
        _STATE.depth += 1
        return self

    def __exit__(self, *exc) -> None:
        _STATE.depth -= 1
        if _STATE.depth == 0:
            Tensor._make_child = _STATE.original_make_child
            Tensor._backward_dispatch = _STATE.original_dispatch
            _STATE.original_make_child = None
            _STATE.original_dispatch = None
