"""Symbolic dimension algebra for the abstract shape interpreter.

A :class:`Dim` is a named symbolic axis (``B`` for batch, ``H_a`` for the
attribute-embedding width, ...) carrying a small concrete *witness* size.
The witness makes a ``Dim`` usable anywhere plain numpy code expects an
integer (``np.zeros((batch, dim))``, ``range(steps)``) via ``__index__``,
so unmodified ``Module.forward`` code runs under symbolic shapes without
edits.  Arithmetic over dims produces :class:`DimExpr` — a canonical
affine combination (``H_r + H_a + H_m`` for a concat, ``2 * H_a`` for a
cls+mean pooling) compared structurally, not by witness value.

:class:`ShapeEnv` owns the atoms of one checking run and maps concrete
witness sizes back to their atoms (``resymbolize``), which is how real
arrays entering a traced forward (parameters, masks, index tables) are
lifted into the symbolic world.  Witness sizes must therefore be unique
per env; the probes use small odd primes for atoms and powers of two for
ordinary hyper-parameters so the mapping is never ambiguous.

The module also hosts the small constraint kit (:class:`Eq`,
:class:`Divides`, :class:`Positive`, :class:`OneOf`) that
``core.config.SDEAConfig`` uses for fail-fast dimension validation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Dim",
    "DimExpr",
    "ShapeEnv",
    "as_expr",
    "Constraint",
    "ConstraintError",
    "Eq",
    "Divides",
    "Positive",
    "OneOf",
    "check_constraints",
    "enforce_constraints",
]

DimLike = Union["Dim", "DimExpr", int]


class Dim(int):
    """A named symbolic axis with a concrete witness size.

    Subclasses ``int`` so numpy treats a ``Dim`` as a genuine integer
    scalar everywhere plain code consumes a shape entry —
    ``np.arange(batch)`` yields an int64 index array, ``np.zeros((b, d))``
    allocates, ``np.sqrt(head_dim)`` divides — while the symbolic
    identity (name, structural equality/hash, DimExpr-lifting ``+``/
    ``-``/``*``) rides on top.  Division and other unlifted operators
    deliberately degrade to plain witness arithmetic.

    ``guard_broadcast=True`` marks an axis that must never be produced by
    stretching a size-1 axis (the batch axis: a silent ``(1, D)`` vs
    ``(B, D)`` broadcast is almost always a lost ``keepdims`` bug).
    """

    # (no __slots__: variable-length builtins like int do not allow them,
    # and an env only ever holds a handful of atoms)

    def __new__(cls, name: str, size: int, guard_broadcast: bool = False):
        size = int(size)
        if size <= 0:
            raise ValueError(f"dim {name!r} must have a positive witness size")
        self = int.__new__(cls, size)
        self.name = name
        self.guard_broadcast = bool(guard_broadcast)
        return self

    @property
    def size(self) -> int:
        """Concrete witness size (the plain-int value of this dim)."""
        return int.__index__(self)

    def __repr__(self) -> str:
        return self.name

    def __hash__(self):
        return hash((Dim, self.name, self.size))

    def __eq__(self, other):
        if isinstance(other, Dim):
            return self.name == other.name and self.size == other.size
        if isinstance(other, DimExpr):
            return as_expr(self) == other
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    # Arithmetic lifts into DimExpr only against fellow symbols; plain
    # numbers degrade to witness arithmetic.  (numpy internals such as
    # ``np.arange`` do python arithmetic like ``(stop - start) / step``
    # on scalars, so `Dim <op> int` must stay a plain number.)  Symbolic
    # sums with constants are still expressible via ``as_expr``.
    def __add__(self, other):
        if isinstance(other, (Dim, DimExpr)):
            return as_expr(self) + as_expr(other)
        return int.__add__(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, (Dim, DimExpr)):
            return as_expr(self) - as_expr(other)
        return int.__sub__(self, other)

    def __rsub__(self, other):
        if isinstance(other, (Dim, DimExpr)):
            return as_expr(other) - as_expr(self)
        return int.__rsub__(self, other)

    def __mul__(self, other):
        if isinstance(other, (Dim, DimExpr)):
            # Dim products are not affine — degrade to the witness value.
            return int.__index__(self) * int(other)
        if isinstance(other, int):
            return as_expr(self) * other
        return int.__mul__(self, other)

    __rmul__ = __mul__


class DimExpr:
    """Canonical affine combination of :class:`Dim` atoms plus a constant.

    Terms keep insertion order (so a concat reads ``H_r + H_a + H_m``),
    while equality and hashing are order-independent and structural.
    """

    __slots__ = ("terms", "const")

    def __init__(self, terms: Dict[Dim, int], const: int = 0):
        self.terms: Tuple[Tuple[Dim, int], ...] = tuple(
            (d, int(c)) for d, c in terms.items() if c != 0
        )
        self.const = int(const)

    @property
    def value(self) -> int:
        """Concrete witness value of the expression."""
        return sum(d.size * c for d, c in self.terms) + self.const

    def __index__(self) -> int:
        return self.value

    __int__ = __index__

    def __repr__(self) -> str:
        parts: List[str] = []
        for d, c in self.terms:
            if c == 1:
                parts.append(d.name)
            else:
                parts.append(f"{c}*{d.name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)

    def __hash__(self):
        return hash((DimExpr, frozenset(self.terms), self.const))

    def __eq__(self, other):
        if isinstance(other, (Dim, int)):
            other = as_expr(other)
        if isinstance(other, DimExpr):
            return (
                frozenset(self.terms) == frozenset(other.terms)
                and self.const == other.const
            )
        return NotImplemented

    def _combine(self, other: DimLike, sign: int) -> "DimExpr":
        other = as_expr(other)
        merged: Dict[Dim, int] = {d: c for d, c in self.terms}
        for d, c in other.terms:
            merged[d] = merged.get(d, 0) + sign * c
        return DimExpr(merged, self.const + sign * other.const)

    def __add__(self, other):
        if not isinstance(other, (Dim, DimExpr, int)):
            return self.value + other
        return self._combine(other, +1)

    __radd__ = __add__

    def __sub__(self, other):
        if not isinstance(other, (Dim, DimExpr, int)):
            return self.value - other
        return self._combine(other, -1)

    def __rsub__(self, other):
        if not isinstance(other, (Dim, DimExpr, int)):
            return other - self.value
        return as_expr(other)._combine(self, -1)

    # Non-affine operators degrade to plain witness arithmetic so raw
    # numpy scalar code (``np.arange``, ``np.sqrt(dim)``, ``d // 2``)
    # keeps working on expression-valued shape entries.
    def __truediv__(self, other):
        return self.value / other

    def __rtruediv__(self, other):
        return other / self.value

    def __floordiv__(self, other):
        return self.value // other

    def __rfloordiv__(self, other):
        return other // self.value

    def __mod__(self, other):
        return self.value % other

    def __rmod__(self, other):
        return other % self.value

    def __mul__(self, other):
        if isinstance(other, (Dim, DimExpr)):
            # Dim products are not affine — degrade to the witness value.
            return self.value * int(other)
        if not isinstance(other, int):
            return NotImplemented
        return DimExpr({d: c * other for d, c in self.terms}, self.const * other)

    __rmul__ = __mul__

    def atoms(self) -> Tuple[Dim, ...]:
        return tuple(d for d, _ in self.terms)


def as_expr(value: DimLike) -> DimExpr:
    """Lift an int or Dim into a DimExpr (DimExpr passes through)."""
    if isinstance(value, DimExpr):
        return value
    if isinstance(value, Dim):
        return DimExpr({value: 1})
    return DimExpr({}, int(value))


def contains_guarded(entry) -> bool:
    """Whether a shape entry involves a broadcast-guarded atom."""
    if isinstance(entry, Dim):
        return entry.guard_broadcast
    if isinstance(entry, DimExpr):
        return any(d.guard_broadcast for d in entry.atoms())
    return False


class ShapeEnv:
    """Registry of symbolic atoms for one shape-checking run.

    ``resymbolize`` maps the axis sizes of a concrete array back to the
    registered atoms, which lifts real tensors (parameters, embedding
    outputs, masks) into the symbolic world mid-forward.  A witness size
    claimed by two atoms becomes ambiguous and is left concrete.
    """

    def __init__(self):
        self._atoms: Dict[str, Dim] = {}
        self._by_size: Dict[int, Optional[Dim]] = {}

    def dim(self, name: str, size: int, guard_broadcast: bool = False) -> Dim:
        if name in self._atoms:
            raise ValueError(f"dim {name!r} already registered")
        atom = Dim(name, size, guard_broadcast=guard_broadcast)
        self._atoms[name] = atom
        if atom.size in self._by_size:
            self._by_size[atom.size] = None  # ambiguous from now on
        else:
            self._by_size[atom.size] = atom
        return atom

    def __getitem__(self, name: str) -> Dim:
        return self._atoms[name]

    def atom_for_size(self, size: int) -> Optional[Dim]:
        return self._by_size.get(int(size))

    def resymbolize(self, shape: Sequence[int]) -> tuple:
        """Map each axis size back to its unique atom where possible."""
        out = []
        for size in shape:
            size = int(size)
            atom = self._by_size.get(size)
            out.append(atom if atom is not None else size)
        return tuple(out)


# ---------------------------------------------------------------------- #
# Constraints (used by SDEAConfig fail-fast validation)
# ---------------------------------------------------------------------- #
class ConstraintError(ValueError):
    """A dimension contract is violated; raised before any training step."""


class Constraint:
    """Base class: ``check()`` returns an error string or None."""

    def check(self) -> Optional[str]:  # pragma: no cover - interface
        raise NotImplementedError


class Eq(Constraint):
    """Two dimension expressions must agree (witness equality)."""

    def __init__(self, lhs: DimLike, rhs: DimLike, context: str = ""):
        self.lhs, self.rhs, self.context = lhs, rhs, context

    def check(self) -> Optional[str]:
        if int(as_expr(self.lhs)) == int(as_expr(self.rhs)):
            return None
        where = f" ({self.context})" if self.context else ""
        return (
            f"{as_expr(self.lhs)!r} = {int(as_expr(self.lhs))} but "
            f"{as_expr(self.rhs)!r} = {int(as_expr(self.rhs))}{where}"
        )


class Divides(Constraint):
    """``divisor`` must evenly divide ``value`` (e.g. heads | bert_dim)."""

    def __init__(self, divisor: DimLike, value: DimLike, context: str = ""):
        self.divisor, self.value, self.context = divisor, value, context

    def check(self) -> Optional[str]:
        d, v = int(as_expr(self.divisor)), int(as_expr(self.value))
        if d > 0 and v % d == 0:
            return None
        where = f" ({self.context})" if self.context else ""
        return f"{as_expr(self.divisor)!r} = {d} does not divide " \
               f"{as_expr(self.value)!r} = {v}{where}"


class Positive(Constraint):
    """A dimension expression must be strictly positive."""

    def __init__(self, value: DimLike, context: str = ""):
        self.value, self.context = value, context

    def check(self) -> Optional[str]:
        if int(as_expr(self.value)) > 0:
            return None
        where = f" ({self.context})" if self.context else ""
        return f"{as_expr(self.value)!r} = {int(as_expr(self.value))} " \
               f"must be positive{where}"


class OneOf(Constraint):
    """A configuration string must be one of the allowed options."""

    def __init__(self, value: str, options: Sequence[str], context: str = ""):
        self.value, self.options, self.context = value, tuple(options), context

    def check(self) -> Optional[str]:
        if self.value in self.options:
            return None
        where = f" ({self.context})" if self.context else ""
        return f"{self.value!r} is not one of {list(self.options)}{where}"


def check_constraints(constraints: Iterable[Constraint]) -> List[str]:
    """Evaluate constraints, returning every violation message."""
    errors = []
    for constraint in constraints:
        message = constraint.check()
        if message is not None:
            errors.append(message)
    return errors


def enforce_constraints(constraints: Iterable[Constraint],
                        header: str = "dimension contract violated") -> None:
    """Raise :class:`ConstraintError` listing all violations, if any."""
    errors = check_constraints(constraints)
    if errors:
        details = "\n".join(f"  - {e}" for e in errors)
        raise ConstraintError(f"{header}:\n{details}")
