"""Per-method abstract-execution probes for ``repro shape-check``.

Each probe builds the real model classes of one registered method at
tiny witness sizes and drives their forwards under a
:class:`~.abstract.SymbolicTrace` — the same ``Module.forward`` code
that trains on real data executes here on zero-FLOP abstract tensors,
so every shape contract (broadcasts, matmul contractions, concat
widths, reductions) is checked statically, in milliseconds, without a
dataset.

Witness-size discipline: symbolic atoms use distinct small odd primes
(B=3 guarded, T=5, H_a=11, H_r=13, H_m=17, N=19, N2=23) and every plain
hyper-parameter in a probe is a power of two (1/2/4/8/16/32), so
``ShapeEnv.resymbolize`` maps sizes back to atoms unambiguously.

Probes assert their method's output contracts via ``ctx.expect*`` and
record findings on the active trace; unexpected exceptions are turned
into probe-error findings by the interpreter.  Model imports live
*inside* each probe so this module stays importable while ``repro.nn``
/ ``repro.core`` initialize (the spec decorator is imported from
``nn.layers``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ...nn.tensor import DEFAULT_DTYPE
from .abstract import AbstractTensor, current_trace, lift_tensor
from .dims import ShapeEnv

__all__ = ["PROBES", "ProbeContext", "probe"]

PROBES: Dict[str, Callable[["ProbeContext"], None]] = {}


def probe(*names: str):
    """Register one probe function for one or more method names."""

    def register(fn):
        for name in names:
            PROBES[name] = fn
        return fn

    return register


class ProbeContext:
    """Symbolic environment + helpers shared by all probes."""

    def __init__(self):
        self.env = ShapeEnv()
        self.B = self.env.dim("B", 3, guard_broadcast=True)   # batch
        self.T = self.env.dim("T", 5)                         # seq/neighbors
        self.H_a = self.env.dim("H_a", 11)                    # attr width
        self.H_r = self.env.dim("H_r", 13)                    # relation width
        self.H_m = self.env.dim("H_m", 17)                    # joint width
        self.N = self.env.dim("N", 19)                        # KG1 entities
        self.N2 = self.env.dim("N2", 23)                      # KG2 entities
        self.rng = np.random.default_rng(0)

    # ---------------- inputs ------------------------------------------ #
    def input(self, *sym, requires_grad: bool = False,
              dtype=DEFAULT_DTYPE) -> AbstractTensor:
        return AbstractTensor(sym, dtype, requires_grad=requires_grad)

    def ids(self, *sym, high: int) -> np.ndarray:
        """Concrete integer-id array with witness-sized axes."""
        shape = tuple(int(e) for e in sym)
        return self.rng.integers(high, size=shape)

    def mask(self, *sym) -> np.ndarray:
        return np.ones(tuple(int(e) for e in sym), dtype=bool)

    def lift(self, tensor) -> AbstractTensor:
        return lift_tensor(tensor, self.env)

    # ---------------- expectations ------------------------------------ #
    def _record(self, kind: str, message: str) -> None:
        trace = current_trace()
        if trace is not None:
            trace.record(kind, "probe", message)

    def expect(self, tensor, *sym) -> None:
        """Assert a tensor's witness shape matches the expected one."""
        shape = getattr(tensor, "shape", None)
        expected = tuple(int(e) for e in sym)
        actual = None if shape is None else tuple(int(e) for e in shape)
        if actual != expected:
            want = "(" + ", ".join(repr(e) for e in sym) + ")"
            self._record(
                "mismatch",
                f"expected output shape {want}, got "
                f"{tuple(shape) if shape is not None else type(tensor)}",
            )

    def expect_scalar(self, tensor) -> None:
        self.expect(tensor)

    def expect_grad(self, tensor) -> None:
        if not getattr(tensor, "requires_grad", False):
            self._record(
                "grad",
                "loss does not require grad — the backward pass would be "
                "a silent no-op for this method's parameters",
            )


# ---------------------------------------------------------------------- #
# Translation-embedding family
# ---------------------------------------------------------------------- #
@probe("mtranse", "jape-stru", "jape", "bootea")
def probe_transe(ctx: ProbeContext) -> None:
    from ...baselines.transe import _TransEModel
    from ...nn import functional as F

    model = _TransEModel(32, 4, 8, ctx.rng)
    heads = ctx.ids(ctx.B, high=32)
    rels = ctx.ids(ctx.B, high=4)
    tails = ctx.ids(ctx.B, high=32)
    pos = model(heads, rels, tails)
    ctx.expect(pos, ctx.B)
    neg = model(ctx.ids(ctx.B, high=32), rels, tails)
    loss = F.margin_ranking_loss(pos, neg, 1.0)
    # Seed-alignment pull term over the same table.
    h1 = model.entities(ctx.ids(ctx.B, high=32))
    h2 = model.entities(ctx.ids(ctx.B, high=32))
    loss = loss + 5.0 * F.l2_distance(h1, h2).mean()
    ctx.expect_scalar(loss)
    ctx.expect_grad(loss)


@probe("transedge")
def probe_transedge(ctx: ProbeContext) -> None:
    from ...baselines.transe_variants import TransEdge
    from ...nn import functional as F

    model = TransEdge()
    model._build(None, 32, 4, ctx.rng)  # pair is unused by this _build
    pos = model._score(ctx.ids(ctx.B, high=32), ctx.ids(ctx.B, high=4),
                       ctx.ids(ctx.B, high=32))
    ctx.expect(pos, ctx.B)
    neg = model._score(ctx.ids(ctx.B, high=32), ctx.ids(ctx.B, high=4),
                       ctx.ids(ctx.B, high=32))
    loss = F.margin_ranking_loss(pos, neg, model.config.margin)
    ctx.expect_scalar(loss)
    ctx.expect_grad(loss)


@probe("naea")
def probe_naea(ctx: ProbeContext) -> None:
    from ...baselines.transe_variants import NAEA
    from ...nn import Embedding, Linear

    model = NAEA()
    # _build needs a KGPair for the neighbor tables; fabricate them at
    # witness sizes instead so _represent/_score run abstractly.
    model._entities = Embedding(32, 8, ctx.rng, std=0.1)
    model._relations = Embedding(4, 8, ctx.rng, std=0.1)
    model._attention = Linear(8, 1, ctx.rng)
    model._neighbor_ids = ctx.ids(32, ctx.T, high=32)
    model._neighbor_rels = ctx.ids(32, ctx.T, high=4)
    model._neighbor_mask = ctx.mask(32, ctx.T)
    score = model._score(ctx.ids(ctx.B, high=32), ctx.ids(ctx.B, high=4),
                         ctx.ids(ctx.B, high=32))
    ctx.expect(score, ctx.B)
    ctx.expect_grad(score)


@probe("iptranse")
def probe_iptranse(ctx: ProbeContext) -> None:
    from ...baselines.transe_variants import IPTransE
    from ...nn import Embedding

    model = IPTransE()
    model._entities = Embedding(32, 8, ctx.rng, std=0.1)
    model._relations = Embedding(4, 8, ctx.rng, std=0.1)
    model._paths = np.stack(
        [ctx.ids(ctx.B, high=32), ctx.ids(ctx.B, high=4),
         ctx.ids(ctx.B, high=32), ctx.ids(ctx.B, high=4),
         ctx.ids(ctx.B, high=32)], axis=1,
    )
    score = model._score(ctx.ids(ctx.B, high=32), ctx.ids(ctx.B, high=4),
                         ctx.ids(ctx.B, high=32))
    ctx.expect(score, ctx.B)
    extra = model._extra_loss(ctx.rng, 32)
    ctx.expect_scalar(extra)
    ctx.expect_grad(extra)


@probe("rsn-lite")
def probe_rsn(ctx: ProbeContext) -> None:
    from ...baselines.rsn import _PathModel
    from ...nn import functional as F

    model = _PathModel(32, 8, ctx.rng)
    context = model.context(ctx.ids(ctx.B, ctx.T, high=32))
    ctx.expect(context, ctx.B, 8)
    positive = model.entities(ctx.ids(ctx.B, high=32))
    negative = model.entities(ctx.ids(ctx.B, high=32))
    loss = F.margin_ranking_loss(F.l2_distance(context, positive),
                                 F.l2_distance(context, negative), 1.0)
    ctx.expect_scalar(loss)
    ctx.expect_grad(loss)


# ---------------------------------------------------------------------- #
# Graph-convolution family
# ---------------------------------------------------------------------- #
def _gcn_pair_loss(ctx: ProbeContext, h1, h2):
    from ...nn import functional as F

    src = ctx.ids(ctx.B, high=int(ctx.N))
    tgt = ctx.ids(ctx.B, high=int(ctx.N2))
    pos_d = F.l2_distance(h1[src], h2[tgt])
    neg_d = F.l2_distance(h1[src], h2[ctx.ids(ctx.B, high=int(ctx.N2))])
    return pos_d.mean() + F.margin_ranking_loss(pos_d, neg_d, 1.0)


@probe("gcn", "gcn-align", "cea")
def probe_gcn(ctx: ProbeContext) -> None:
    from ...baselines.gcn import _SharedGCN

    model = _SharedGCN(int(ctx.N), int(ctx.N2), 8, 2, ctx.rng)
    h1 = model.encode(1, np.eye(int(ctx.N)))
    h2 = model.encode(2, np.eye(int(ctx.N2)))
    ctx.expect(h1, ctx.N, 8)
    ctx.expect(h2, ctx.N2, 8)
    loss = _gcn_pair_loss(ctx, h1, h2)
    ctx.expect_scalar(loss)
    ctx.expect_grad(loss)


@probe("gat-align")
def probe_gat(ctx: ProbeContext) -> None:
    from ...baselines.gat import _GATLayer
    from ...nn import Parameter

    layers = [_GATLayer(8, ctx.rng, activate=True),
              _GATLayer(8, ctx.rng, activate=False)]
    mask1 = ctx.mask(ctx.N, ctx.N)
    mask2 = ctx.mask(ctx.N2, ctx.N2)
    feat1 = ctx.lift(Parameter(ctx.rng.normal(0.0, 0.1, size=(int(ctx.N), 8))))
    feat2 = ctx.lift(Parameter(ctx.rng.normal(0.0, 0.1, size=(int(ctx.N2), 8))))
    h1, h2 = feat1, feat2
    for layer in layers:
        h1 = layer(h1, mask1)
        h2 = layer(h2, mask2)
    ctx.expect(h1, ctx.N, 8)
    ctx.expect(h2, ctx.N2, 8)
    loss = _gcn_pair_loss(ctx, h1, h2)
    ctx.expect_scalar(loss)
    ctx.expect_grad(loss)


@probe("kecg")
def probe_kecg(ctx: ProbeContext) -> None:
    from ...baselines.gat import _NEG_INF
    from ...nn import Embedding, Linear, Parameter, Tensor
    from ...nn import functional as F

    # Mirrors the gat() closure KECG.fit builds inline (Embedding front
    # end + shared projection + additive attention scores).
    entities = Embedding(int(ctx.N) + int(ctx.N2), 8, ctx.rng, std=0.1)
    relations = Embedding(4, 8, ctx.rng, std=0.1)
    proj = Linear(8, 8, ctx.rng, bias=False)
    attn_src = Parameter(ctx.rng.normal(0.0, 0.1, size=(8,)))
    attn_dst = Parameter(ctx.rng.normal(0.0, 0.1, size=(8,)))

    def gat(ids_range, adjacency_mask):
        hidden = entities(ids_range)
        projected = proj(hidden)
        n = projected.shape[0]
        scores = (projected @ attn_src).reshape(n, 1) + \
            (projected @ attn_dst).reshape(1, n)
        scores = scores.relu() - (-scores).relu() * 0.2
        bias = np.where(adjacency_mask, 0.0, _NEG_INF)
        alpha = F.softmax(scores + Tensor(bias), axis=-1)
        return alpha @ projected

    h1 = gat(np.arange(int(ctx.N)), ctx.mask(ctx.N, ctx.N))
    h2 = gat(np.arange(int(ctx.N2)) + int(ctx.N), ctx.mask(ctx.N2, ctx.N2))
    ctx.expect(h1, ctx.N, 8)
    ctx.expect(h2, ctx.N2, 8)
    loss = _gcn_pair_loss(ctx, h1, h2)
    # TransE side loss over the merged table.
    total = int(ctx.N) + int(ctx.N2)
    pos = F.l2_distance(entities(ctx.ids(ctx.B, high=total))
                        + relations(ctx.ids(ctx.B, high=4)),
                        entities(ctx.ids(ctx.B, high=total)))
    loss = loss + pos.mean()
    ctx.expect_scalar(loss)
    ctx.expect_grad(loss)


@probe("hman")
def probe_hman(ctx: ProbeContext) -> None:
    from ...nn import Linear, Parameter, Tensor
    from ...nn import functional as F

    # Mirrors the encode() closure HMAN.fit builds inline: two GCN
    # convolutions plus relation/attribute profile aspects concatenated.
    conv1 = Linear(8, 8, ctx.rng)
    conv2 = Linear(8, 8, ctx.rng)
    rel_fnn = Linear(4, 2, ctx.rng)
    attr_fnn = Linear(4, 2, ctx.rng)

    def encode(n_atom):
        n = int(n_atom)
        features = ctx.lift(Parameter(ctx.rng.normal(0.0, 0.1, size=(n, 8))))
        adj = Tensor(np.eye(n))
        hidden = conv1(adj @ features).relu()
        hidden = conv2(adj @ hidden)
        rel_aspect = rel_fnn(Tensor(ctx.rng.random((n, 4)))).tanh()
        attr_aspect = attr_fnn(Tensor(ctx.rng.random((n, 4)))).tanh()
        return F.concatenate([hidden, rel_aspect, attr_aspect], axis=-1)

    h1 = encode(ctx.N)
    h2 = encode(ctx.N2)
    ctx.expect(h1, ctx.N, 12)
    ctx.expect(h2, ctx.N2, 12)
    loss = _gcn_pair_loss(ctx, h1, h2)
    ctx.expect_scalar(loss)
    ctx.expect_grad(loss)


@probe("rdgcn", "hgcn")
def probe_highway_gcn(ctx: ProbeContext) -> None:
    from ...baselines.rdgcn import _HighwayGCN
    from ...nn import Parameter

    model = _HighwayGCN(8, 2, ctx.rng)
    feat1 = ctx.lift(Parameter(ctx.rng.normal(0.0, 0.1, size=(int(ctx.N), 8))))
    feat2 = ctx.lift(Parameter(ctx.rng.normal(0.0, 0.1, size=(int(ctx.N2), 8))))
    h1 = model(feat1, np.eye(int(ctx.N)))
    h2 = model(feat2, np.eye(int(ctx.N2)))
    ctx.expect(h1, ctx.N, 8)
    ctx.expect(h2, ctx.N2, 8)
    loss = _gcn_pair_loss(ctx, h1, h2)
    ctx.expect_scalar(loss)
    ctx.expect_grad(loss)


# ---------------------------------------------------------------------- #
# SDEA core modules (+ the BERT-interaction baseline built on them)
# ---------------------------------------------------------------------- #
def _attribute_module(ctx: ProbeContext):
    from ...core.attribute_module import AttributeEmbeddingModule
    from ...text.bert import BertConfig, MiniBert

    config = BertConfig(vocab_size=32, dim=16, num_heads=2, ff_dim=32,
                        num_layers=1, max_len=8, dropout=0.0)
    bert = MiniBert(config, ctx.rng)
    module = AttributeEmbeddingModule(bert, int(ctx.H_a), ctx.rng,
                                      pooling="cls_mean", idf=None)
    ids = ctx.ids(ctx.B, ctx.T, high=32)
    mask = ctx.mask(ctx.B, ctx.T)
    h_a = module(ids, mask)
    ctx.expect(h_a, ctx.B, ctx.H_a)
    ctx.expect_grad(h_a)
    return h_a


@probe("bert-int")
def probe_bert_int(ctx: ProbeContext) -> None:
    from ...nn import functional as F

    h_a = _attribute_module(ctx)
    # Interaction similarity + margin fine-tuning over the embeddings.
    sim = F.cosine_similarity(h_a, h_a.detach())
    ctx.expect(sim, ctx.B)
    loss = F.margin_ranking_loss(F.l2_distance(h_a, h_a.detach()),
                                 F.l2_distance(h_a, h_a.detach()), 1.0)
    ctx.expect_scalar(loss)
    ctx.expect_grad(loss)


def _relation_module(ctx: ProbeContext, aggregator: str):
    from ...core.relation_module import RelationEmbeddingModule

    module = RelationEmbeddingModule(int(ctx.H_a), int(ctx.H_r), ctx.rng,
                                     aggregator=aggregator)
    # Neighbor attribute embeddings are frozen inputs during Algorithm 3.
    neighbors = ctx.input(ctx.B, ctx.T, ctx.H_a)
    mask = ctx.mask(ctx.B, ctx.T)
    lengths = np.full(int(ctx.B), int(ctx.T))
    h_r = module(neighbors, mask, lengths)
    ctx.expect(h_r, ctx.B, ctx.H_r)
    ctx.expect_grad(h_r)
    return h_r


@probe("sdea")
def probe_sdea(ctx: ProbeContext) -> None:
    from ...core import losses
    from ...core.joint import JointRepresentation, final_embedding, \
        training_embedding

    h_a = _attribute_module(ctx)
    for aggregator in ("attention_only", "mean", "max"):
        _relation_module(ctx, aggregator)
    h_r = _relation_module(ctx, "bigru_attention")

    joint = JointRepresentation(int(ctx.H_a), int(ctx.H_r), int(ctx.H_m),
                                ctx.rng)
    h_m = joint(h_a, h_r)
    ctx.expect(h_m, ctx.B, ctx.H_m)
    ent = final_embedding(h_r, h_a, h_m)
    ctx.expect(ent, ctx.B, ctx.H_r + ctx.H_a + ctx.H_m)
    train = training_embedding(h_r, h_m)
    ctx.expect(train, ctx.B, ctx.H_r + ctx.H_m)

    perm = np.arange(int(ctx.B))[::-1].copy()
    loss = losses.triplet_margin_loss(train, train[perm], train[perm], 1.0)
    ctx.expect_scalar(loss)
    ctx.expect_grad(loss)


@probe("sdea-norel")
def probe_sdea_norel(ctx: ProbeContext) -> None:
    from ...core import losses

    # Ablation: H_ent = H_a; the relation module never runs.
    h_a = _attribute_module(ctx)
    perm = np.arange(int(ctx.B))[::-1].copy()
    loss = losses.triplet_margin_loss(h_a, h_a[perm], h_a[perm], 1.0)
    ctx.expect_scalar(loss)
    ctx.expect_grad(loss)


def available_probes() -> List[str]:
    """Sorted names of every method a probe is registered for."""
    return sorted(PROBES)
