"""Abstract tensors: the ``repro.nn`` op surface over symbolic shapes.

:class:`AbstractTensor` subclasses :class:`repro.nn.Tensor` but carries
only ``(shape, dtype, requires_grad)`` — its ``.data`` is a zero-stride
``np.broadcast_to`` view of a single scalar, so a whole forward pass
executes with zero real FLOPs and near-zero memory while every shape
rule (numpy broadcasting, matmul contraction, reshape conservation,
reduction/keepdims, concat/stack) is checked symbolically.

Shape entries are ints, :class:`~.dims.Dim` atoms, or affine
:class:`~.dims.DimExpr` combinations; dtypes are inferred by probing the
actual numpy operation on 0-d operands, so promotion semantics are exact
by construction.  While a :class:`SymbolicTrace` is active, suspicious
but legal events are recorded on it: a size-1 axis silently stretched
against a broadcast-guarded dim (lost ``keepdims`` bugs) and floating
results that deviate from ``nn.DEFAULT_DTYPE``.  Hard shape violations
raise :class:`AbstractShapeError`.

Mixed real/abstract expressions stay abstract: reflected operators on
the subclass take priority (``real + abstract`` routes here), and the
``concatenate``/``stack``/``where`` free functions in ``nn.tensor``
dispatch to the ``_*_override`` hooks defined on this class.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ...nn.tensor import DEFAULT_DTYPE, Tensor, is_grad_enabled
from .dims import Dim, DimExpr, ShapeEnv, as_expr, contains_guarded

__all__ = [
    "AbstractShapeError",
    "AbstractTensor",
    "ShapeEvent",
    "SymbolicTrace",
    "current_trace",
    "lift_tensor",
    "abstract_concatenate",
    "abstract_stack",
    "abstract_where",
]


class AbstractShapeError(ValueError):
    """A shape rule is statically violated during abstract execution."""


def _fmt_shape(sym: tuple) -> str:
    return "(" + ", ".join(repr(e) for e in sym) + ")"


def _is_symbolic(entry) -> bool:
    return isinstance(entry, (Dim, DimExpr))


# ---------------------------------------------------------------------- #
# Trace context: collects suspicious-but-legal events during a check run
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShapeEvent:
    """One recorded observation (kind: 'stretch' | 'dtype' | custom)."""

    kind: str
    op: str
    message: str


class SymbolicTrace:
    """Active while a forward is being abstractly executed.

    Carries the :class:`ShapeEnv` used to lift real arrays into symbolic
    shapes and accumulates deduplicated :class:`ShapeEvent` records
    (loops re-emit the same event every iteration; one copy is enough).
    """

    def __init__(self, env: Optional[ShapeEnv] = None):
        self.env = env
        self.events: List[ShapeEvent] = []

    def record(self, kind: str, op: str, message: str) -> None:
        event = ShapeEvent(kind, op, message)
        if event not in self.events:
            self.events.append(event)

    def __enter__(self) -> "SymbolicTrace":
        global _CURRENT
        self._prev = _CURRENT
        _CURRENT = self
        return self

    def __exit__(self, *exc) -> None:
        global _CURRENT
        _CURRENT = self._prev


_CURRENT: Optional[SymbolicTrace] = None


def current_trace() -> Optional[SymbolicTrace]:
    return _CURRENT


def _resym(shape: Sequence[int]) -> tuple:
    """Map a concrete shape through the active trace's environment."""
    trace = _CURRENT
    if trace is not None and trace.env is not None:
        return trace.env.resymbolize(shape)
    return tuple(int(s) for s in shape)


# ---------------------------------------------------------------------- #
# Symbolic broadcasting
# ---------------------------------------------------------------------- #
def broadcast_sym(a_sym: tuple, b_sym: tuple, op: str) -> tuple:
    """Numpy broadcasting over symbolic shapes.

    Raises :class:`AbstractShapeError` on incompatible axes.  An axis
    explicitly present with size 1 that stretches against a
    broadcast-guarded dim (the batch axis) records a 'stretch' event on
    the active trace — legal numpy, almost always a lost ``keepdims``.
    """
    la, lb = len(a_sym), len(b_sym)
    out = []
    for i in range(1, max(la, lb) + 1):
        ea = a_sym[la - i] if i <= la else None
        eb = b_sym[lb - i] if i <= lb else None
        if ea is None:
            out.append(eb)
            continue
        if eb is None:
            out.append(ea)
            continue
        wa, wb = int(ea), int(eb)
        if wa == wb:
            out.append(ea if _is_symbolic(ea) else eb)
        elif wa == 1 or wb == 1:
            target = eb if wa == 1 else ea
            out.append(target)
            trace = _CURRENT
            if trace is not None and contains_guarded(target):
                trace.record(
                    "stretch", op,
                    f"size-1 axis silently broadcast to {target!r} in op "
                    f"'{op}': {_fmt_shape(a_sym)} vs {_fmt_shape(b_sym)}",
                )
        else:
            raise AbstractShapeError(
                f"operands could not be broadcast together in op '{op}': "
                f"{_fmt_shape(a_sym)} vs {_fmt_shape(b_sym)}"
            )
    return tuple(reversed(out))


def _note_dtype(op: str, dtype: np.dtype) -> None:
    trace = _CURRENT
    if trace is not None and dtype.kind in "fc" and dtype != DEFAULT_DTYPE:
        trace.record(
            "dtype", op,
            f"op '{op}' produced {dtype} — deviates from DEFAULT_DTYPE "
            f"({np.dtype(DEFAULT_DTYPE)})",
        )


# ---------------------------------------------------------------------- #
# The abstract tensor itself
# ---------------------------------------------------------------------- #
class AbstractTensor(Tensor):
    """A Tensor that executes shape/dtype rules only.

    ``shape`` returns the *symbolic* tuple; ``.data`` is a zero-stride
    witness array (every symbolic dim degraded to its witness int via
    ``__index__``) so raw-numpy code paths inside forwards keep working.
    No autograd graph is recorded — only ``requires_grad`` propagation.
    """

    __slots__ = ("sym",)

    def __init__(self, shape: Sequence, dtype=DEFAULT_DTYPE,
                 requires_grad: bool = False):
        sym = tuple(shape)
        witness = tuple(int(e) for e in sym)
        if any(w < 0 for w in witness):
            raise ValueError(f"negative dimension in {_fmt_shape(sym)}")
        # Bypass Tensor.__init__: it would copy and force DEFAULT_DTYPE,
        # destroying both the zero-memory witness and dtype tracking.
        self.data = np.broadcast_to(np.zeros((), dtype=np.dtype(dtype)),
                                    witness)
        self.grad = None
        self.requires_grad = bool(requires_grad)
        self._backward = None
        self._parents = ()
        self._ctx = None
        self.sym = sym

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #
    @property
    def shape(self) -> tuple:
        return self.sym

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return (f"AbstractTensor(shape={_fmt_shape(self.sym)}, "
                f"dtype={self.data.dtype}{grad_note})")

    def detach(self) -> "AbstractTensor":
        return AbstractTensor(self.sym, self.data.dtype, requires_grad=False)

    # -------------------------------------------------------------- #
    # Lifting and dtype probing
    # -------------------------------------------------------------- #
    @staticmethod
    def _meta(value):
        """(symbolic shape, 0-d dtype probe value, requires_grad)."""
        if isinstance(value, AbstractTensor):
            return value.sym, np.ones((), value.data.dtype), value.requires_grad
        if isinstance(value, Tensor):
            return (_resym(value.shape), np.ones((), value.data.dtype),
                    value.requires_grad)
        if isinstance(value, (bool, int, float, complex)):
            # Keep python scalars raw so numpy's weak-promotion rules apply.
            return (), value, False
        arr = np.asarray(value)
        return _resym(arr.shape), np.ones((), arr.dtype), False

    def _result(self, sym, dtype, requires_grad, op: str) -> "AbstractTensor":
        dtype = np.dtype(dtype)
        _note_dtype(op, dtype)
        rg = is_grad_enabled() and requires_grad
        return AbstractTensor(sym, dtype, requires_grad=rg)

    # -------------------------------------------------------------- #
    # Elementwise arithmetic
    # -------------------------------------------------------------- #
    def _binary(self, other, opfn, opname, reflect=False):
        o_sym, o_probe, o_rg = self._meta(other)
        s_probe = np.ones((), self.data.dtype)
        if reflect:
            sym = broadcast_sym(o_sym, self.sym, opname)
            dtype = np.asarray(opfn(o_probe, s_probe)).dtype
        else:
            sym = broadcast_sym(self.sym, o_sym, opname)
            dtype = np.asarray(opfn(s_probe, o_probe)).dtype
        return self._result(sym, dtype, self.requires_grad or o_rg, opname)

    def __add__(self, other):
        return self._binary(other, operator.add, "add")

    def __radd__(self, other):
        return self._binary(other, operator.add, "add", reflect=True)

    def __sub__(self, other):
        return self._binary(other, operator.sub, "sub")

    def __rsub__(self, other):
        return self._binary(other, operator.sub, "sub", reflect=True)

    def __mul__(self, other):
        return self._binary(other, operator.mul, "mul")

    def __rmul__(self, other):
        return self._binary(other, operator.mul, "mul", reflect=True)

    def __truediv__(self, other):
        return self._binary(other, operator.truediv, "div")

    def __rtruediv__(self, other):
        return self._binary(other, operator.truediv, "div", reflect=True)

    def __neg__(self):
        dtype = (-np.ones((), self.data.dtype)).dtype
        return self._result(self.sym, dtype, self.requires_grad, "neg")

    def __pow__(self, exponent):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        dtype = (np.ones((), self.data.dtype) ** exponent).dtype
        return self._result(self.sym, dtype, self.requires_grad, "pow")

    # -------------------------------------------------------------- #
    # Matrix operations
    # -------------------------------------------------------------- #
    def matmul(self, other):
        o_sym, o_probe, o_rg = self._meta(other)
        a, b = list(self.sym), list(o_sym)
        if not a or not b:
            raise AbstractShapeError(
                f"matmul requires at least 1-d operands: "
                f"{_fmt_shape(self.sym)} @ {_fmt_shape(o_sym)}"
            )
        a_vec, b_vec = len(a) == 1, len(b) == 1
        if a_vec:
            a = [1] + a
        if b_vec:
            b = b + [1]
        if int(a[-1]) != int(b[-2]):
            raise AbstractShapeError(
                f"matmul inner dimensions differ: {a[-1]!r} "
                f"(= {int(a[-1])}) vs {b[-2]!r} (= {int(b[-2])}) in "
                f"{_fmt_shape(self.sym)} @ {_fmt_shape(o_sym)}"
            )
        batch = broadcast_sym(tuple(a[:-2]), tuple(b[:-2]), "matmul")
        sym = list(batch) + [a[-2], b[-1]]
        if b_vec:
            sym = sym[:-1]
        if a_vec:
            sym = sym[:-2] + sym[-1:] if not b_vec else sym[:-1]
        dtype = np.result_type(self.data.dtype, np.asarray(o_probe).dtype)
        return self._result(tuple(sym), dtype,
                            self.requires_grad or o_rg, "matmul")

    def __matmul__(self, other):
        return self.matmul(other)

    def __rmatmul__(self, other):
        return _as_abstract(other).matmul(self)

    def transpose(self, *axes):
        nd = len(self.sym)
        axes_t = tuple(axes) if axes else tuple(reversed(range(nd)))
        sym = tuple(self.sym[a] for a in axes_t)
        return self._result(sym, self.data.dtype, self.requires_grad,
                            "transpose")

    def swapaxes(self, axis1, axis2):
        sym = list(self.sym)
        sym[axis1], sym[axis2] = sym[axis2], sym[axis1]
        return self._result(tuple(sym), self.data.dtype, self.requires_grad,
                            "swapaxes")

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        total = int(np.prod([int(e) for e in self.sym], dtype=np.int64))
        entries = list(shape)
        hole = None
        known = 1
        for i, e in enumerate(entries):
            if not _is_symbolic(e) and int(e) == -1:
                if hole is not None:
                    raise AbstractShapeError("reshape: more than one -1")
                hole = i
            else:
                known *= int(e)
        if hole is not None:
            if known == 0 or total % known != 0:
                raise AbstractShapeError(
                    f"cannot reshape {_fmt_shape(self.sym)} (size {total}) "
                    f"into {_fmt_shape(tuple(entries))}"
                )
            entries[hole] = total // known
            known *= entries[hole]
        if known != total:
            raise AbstractShapeError(
                f"cannot reshape {_fmt_shape(self.sym)} (size {total}) into "
                f"{_fmt_shape(tuple(entries))} (size {known})"
            )
        return self._result(tuple(entries), self.data.dtype,
                            self.requires_grad, "reshape")

    # -------------------------------------------------------------- #
    # Reductions
    # -------------------------------------------------------------- #
    def _reduce_sym(self, axis, keepdims):
        nd = len(self.sym)
        if axis is None:
            axes = set(range(nd))
        else:
            axes_t = (axis,) if isinstance(axis, int) else tuple(axis)
            axes = {a % nd for a in axes_t}
        out = []
        for i, e in enumerate(self.sym):
            if i in axes:
                if keepdims:
                    out.append(1)
            else:
                out.append(e)
        return tuple(out)

    def sum(self, axis=None, keepdims=False):
        dtype = np.ones((1,), self.data.dtype).sum().dtype
        return self._result(self._reduce_sym(axis, keepdims), dtype,
                            self.requires_grad, "sum")

    def mean(self, axis=None, keepdims=False):
        dtype = np.ones((1,), self.data.dtype).mean().dtype
        return self._result(self._reduce_sym(axis, keepdims), dtype,
                            self.requires_grad, "mean")

    def max(self, axis=None, keepdims=False):
        return self._result(self._reduce_sym(axis, keepdims), self.data.dtype,
                            self.requires_grad, "max")

    # -------------------------------------------------------------- #
    # Elementwise nonlinearities (dtype probed on the real formula)
    # -------------------------------------------------------------- #
    def _unary(self, probe, opname):
        dtype = np.asarray(probe(np.ones((), self.data.dtype))).dtype
        return self._result(self.sym, dtype, self.requires_grad, opname)

    def exp(self):
        return self._unary(np.exp, "exp")

    def log(self):
        return self._unary(np.log, "log")

    def sqrt(self):
        return self._unary(np.sqrt, "sqrt")

    def tanh(self):
        return self._unary(np.tanh, "tanh")

    def sigmoid(self):
        def probe(x):
            exp_neg = np.exp(-np.abs(x))
            return np.where(x >= 0, 1.0 / (1.0 + exp_neg),
                            exp_neg / (1.0 + exp_neg))
        return self._unary(probe, "sigmoid")

    def relu(self):
        return self._unary(lambda x: x * (x > 0), "relu")

    def abs(self):
        return self._unary(np.abs, "abs")

    def clip_min(self, minimum):
        return self._unary(lambda x: np.maximum(x, minimum), "clip_min")

    # -------------------------------------------------------------- #
    # Indexing / gathering
    # -------------------------------------------------------------- #
    def __getitem__(self, index):
        if isinstance(index, Tensor):
            index = index.data
        out = self.data[index]  # numpy validates on the witness
        sym = self._getitem_sym(index, out.shape)
        return self._result(sym, self.data.dtype, self.requires_grad,
                            "getitem")

    def _getitem_sym(self, index, out_shape):
        idx = list(index) if isinstance(index, tuple) else [index]
        basic = all(
            isinstance(e, (int, np.integer, slice)) or e is Ellipsis
            for e in idx
        )
        if not basic:
            # Advanced indexing: fall back to resymbolizing the witness.
            return _resym(out_shape)
        if Ellipsis in idx:
            pos = idx.index(Ellipsis)
            fill = len(self.sym) - (len(idx) - 1)
            idx = idx[:pos] + [slice(None)] * fill + idx[pos + 1:]
        sym = []
        axis = 0
        for e in idx:
            entry = self.sym[axis]
            if isinstance(e, slice):
                if e == slice(None):
                    sym.append(entry)
                else:
                    sym.append(len(range(*e.indices(int(entry)))))
            # integer index: axis is dropped
            axis += 1
        sym.extend(self.sym[axis:])
        return tuple(sym)

    def take(self, indices, axis=0):
        indices = np.asarray(
            indices.data if isinstance(indices, Tensor) else indices
        )
        axis = axis % len(self.sym)
        sym = (self.sym[:axis] + _resym(indices.shape)
               + self.sym[axis + 1:])
        return self._result(sym, self.data.dtype, self.requires_grad, "take")

    # -------------------------------------------------------------- #
    # Safety net: any inherited op we did not override still yields an
    # abstract child (computed on the tiny witness buffers).
    # -------------------------------------------------------------- #
    def _make_child(self, data, parents, backward):
        arr = np.asarray(data)
        rg = any(p.requires_grad for p in parents)
        return self._result(_resym(arr.shape), arr.dtype, rg, "op")

    # -------------------------------------------------------------- #
    # Dispatch hooks for the tensor.py free functions
    # -------------------------------------------------------------- #
    def _concat_override(self, tensors, axis):
        return abstract_concatenate(tensors, axis)

    def _stack_override(self, tensors, axis):
        return abstract_stack(tensors, axis)

    def _where_override(self, condition, a, b):
        return abstract_where(condition, a, b)


def _as_abstract(value) -> AbstractTensor:
    if isinstance(value, AbstractTensor):
        return value
    sym, probe, rg = AbstractTensor._meta(value)
    return AbstractTensor(sym, np.asarray(probe).dtype, requires_grad=rg)


def lift_tensor(tensor: Tensor, env: Optional[ShapeEnv] = None) -> AbstractTensor:
    """Lift a real tensor into the abstract world, resymbolizing its shape."""
    sym = env.resymbolize(tensor.shape) if env is not None else _resym(tensor.shape)
    return AbstractTensor(sym, tensor.data.dtype,
                          requires_grad=tensor.requires_grad)


# ---------------------------------------------------------------------- #
# Abstract counterparts of the tensor.py free functions
# ---------------------------------------------------------------------- #
def abstract_concatenate(tensors: Sequence, axis: int = 0) -> AbstractTensor:
    metas = [AbstractTensor._meta(t) for t in tensors]
    syms = [m[0] for m in metas]
    nd = len(syms[0])
    if any(len(s) != nd for s in syms):
        raise AbstractShapeError(
            "concatenate: operands have different ranks: "
            + ", ".join(_fmt_shape(s) for s in syms)
        )
    axis = axis % nd
    out = []
    for i in range(nd):
        entries = [s[i] for s in syms]
        if i == axis:
            total = as_expr(entries[0])
            for e in entries[1:]:
                total = total + as_expr(e)
            out.append(total.const if not total.terms else total)
            continue
        witnesses = {int(e) for e in entries}
        if len(witnesses) != 1:
            raise AbstractShapeError(
                f"concatenate: non-axis dimension {i} differs: "
                + ", ".join(_fmt_shape(s) for s in syms)
            )
        out.append(next((e for e in entries if _is_symbolic(e)), entries[0]))
    dtype = np.result_type(*[np.asarray(m[1]).dtype for m in metas])
    rg = is_grad_enabled() and any(m[2] for m in metas)
    result = AbstractTensor(tuple(out), dtype, requires_grad=rg)
    _note_dtype("concatenate", result.data.dtype)
    return result


def abstract_stack(tensors: Sequence, axis: int = 0) -> AbstractTensor:
    metas = [AbstractTensor._meta(t) for t in tensors]
    syms = [m[0] for m in metas]
    witnesses = {tuple(int(e) for e in s) for s in syms}
    if len(witnesses) != 1:
        raise AbstractShapeError(
            "stack: operands have different shapes: "
            + ", ".join(_fmt_shape(s) for s in syms)
        )
    merged = [next((s[i] for s in syms if _is_symbolic(s[i])), syms[0][i])
              for i in range(len(syms[0]))]
    axis = axis % (len(merged) + 1)
    new_entry = _resym((len(tensors),))[0]
    merged.insert(axis, new_entry)
    dtype = np.result_type(*[np.asarray(m[1]).dtype for m in metas])
    rg = is_grad_enabled() and any(m[2] for m in metas)
    result = AbstractTensor(tuple(merged), dtype, requires_grad=rg)
    _note_dtype("stack", result.data.dtype)
    return result


def abstract_where(condition, a, b) -> AbstractTensor:
    c_sym, _, _ = AbstractTensor._meta(condition)
    a_sym, a_probe, a_rg = AbstractTensor._meta(a)
    b_sym, b_probe, b_rg = AbstractTensor._meta(b)
    sym = broadcast_sym(broadcast_sym(c_sym, a_sym, "where"), b_sym, "where")
    dtype = np.result_type(np.asarray(a_probe).dtype,
                           np.asarray(b_probe).dtype)
    rg = is_grad_enabled() and (a_rg or b_rg)
    result = AbstractTensor(sym, dtype, requires_grad=rg)
    _note_dtype("where", result.data.dtype)
    return result
