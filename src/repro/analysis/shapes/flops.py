"""Analytic FLOP estimates for the ``repro.nn`` op surface.

This is the shape-driven counterpart of :mod:`.abstract`: the same op
vocabulary (every ``Tensor`` method and ``tensor.py`` free function that
creates an autograd child), but instead of propagating symbolic shapes
it maps ``(op, operand shapes, output shape)`` to a floating-operation
estimate.  The op profiler (:mod:`repro.obs.profile`) uses it to turn
recorded op events into FLOP totals, and ``benchmarks/bench_hotpath.py``
derives FLOP/s from the same formulas — one FLOP model, shared by both.

Conventions (documented in ``docs/observability.md``):

* elementwise arithmetic, comparisons-with-grad (``relu``/``clip_min``),
  simple transcendentals (``exp``/``log``/``sqrt``) and ``where`` count
  **1 FLOP per output element**;
* ``tanh``/``sigmoid`` count **4 FLOPs per element** (composite
  exp-based formulas);
* ``matmul`` counts the textbook ``2 * K * prod(out)`` multiply-adds,
  where ``K`` is the contracted dimension;
* reductions (``sum``/``max``) count one FLOP per *input* element;
  ``mean`` adds one divide per output element;
* pure data movement (``transpose``, ``reshape``, ``getitem``, ``take``,
  ``concatenate``, ``stack``, ...) counts **0** — its cost shows up in
  wall time and output bytes, not FLOPs;
* a backward pass is estimated at **2x** the forward op (one gradient
  per operand, same contraction sizes) by the profiler.

Estimates are deterministic functions of shapes — no timing, no
hardware model.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

__all__ = ["FLOP_FORMULAS", "flops_for", "covered_ops"]

Shape = Tuple[int, ...]


def _numel(shape: Sequence[int]) -> int:
    out = 1
    for entry in shape:
        out *= int(entry)
    return out


def _out_elems(parents: Sequence[Shape], out: Shape) -> int:
    return _numel(out)


def _out_elems_x4(parents: Sequence[Shape], out: Shape) -> int:
    return 4 * _numel(out)


def _in_elems(parents: Sequence[Shape], out: Shape) -> int:
    return _numel(parents[0]) if parents else _numel(out)


def _mean_flops(parents: Sequence[Shape], out: Shape) -> int:
    return _in_elems(parents, out) + _numel(out)


def _matmul_flops(parents: Sequence[Shape], out: Shape) -> int:
    # K is always the last axis of the first operand, for every numpy
    # ``@`` arity (vec-vec, mat-vec, vec-mat, batched mat-mat): the
    # output holds prod(out) dot products of length K, 2 FLOPs each.
    if not parents or not parents[0]:
        return 0
    contracted = int(parents[0][-1])
    return 2 * contracted * _numel(out)


def _zero(parents: Sequence[Shape], out: Shape) -> int:
    return 0


# --------------------------------------------------------------------- #
# Fused kernels (repro.nn.kernels) — one autograd node for an entire
# composed subgraph, so the FLOP model must charge the whole subgraph to
# the single node.  Formulas mirror the reference decompositions the
# kernels replace (same matmul contractions, same per-element op
# counts), so fused and reference runs report comparable FLOP totals.
# --------------------------------------------------------------------- #

def _gru_fused_flops(parents: Sequence[Shape], out: Shape) -> int:
    # Parents lead with x: (B, D) for the cell, (B, T, D) for the
    # sequence kernel; out is (B, H) / (B, T, H).  Per output element:
    # three matmul contractions (x-projection to 3H, h-projection to 2H,
    # candidate (r*h) projection to H -> 6D + 6H multiply-adds) plus two
    # sigmoids, one tanh and the gate/blend arithmetic (~22 FLOPs).
    if not parents or not parents[0] or not out:
        return 0
    d_in = int(parents[0][-1])
    hidden = int(out[-1])
    return _numel(out) * (6 * d_in + 6 * hidden + 22)


def _softmax_fused_flops(parents: Sequence[Shape], out: Shape) -> int:
    # max, subtract, exp, sum, divide — 5 per element.
    return 5 * _numel(out)


def _log_softmax_fused_flops(parents: Sequence[Shape], out: Shape) -> int:
    # max, subtract, exp, sum, log, subtract — 6 per element.
    return 6 * _numel(out)


def _cross_entropy_fused_flops(parents: Sequence[Shape], out: Shape) -> int:
    # log-softmax over the logits plus the gather/mean — dominated by
    # the 6-per-logit log-softmax; the picked-row reduction is O(rows).
    return 6 * _in_elems(parents, out)


def _layer_norm_fused_flops(parents: Sequence[Shape], out: Shape) -> int:
    # mean, center, square-mean, sqrt, divide, scale, shift — ~8/elem.
    return 8 * _numel(out)


#: op name -> (parent shapes, out shape) -> FLOP estimate.  Op names are
#: the friendly names the profiler derives from the engine's backward
#: closures (dunders stripped: ``__add__`` -> ``add``,
#: ``__truediv__`` -> ``div``).
FLOP_FORMULAS: Dict[str, Callable[[Sequence[Shape], Shape], int]] = {
    # elementwise arithmetic
    "add": _out_elems,
    "sub": _out_elems,
    "mul": _out_elems,
    "div": _out_elems,
    "neg": _out_elems,
    "pow": _out_elems,
    "abs": _out_elems,
    "relu": _out_elems,
    "clip_min": _out_elems,
    "where": _out_elems,
    # transcendentals
    "exp": _out_elems,
    "log": _out_elems,
    "sqrt": _out_elems,
    "tanh": _out_elems_x4,
    "sigmoid": _out_elems_x4,
    # contractions
    "matmul": _matmul_flops,
    # reductions
    "sum": _in_elems,
    "max": _in_elems,
    "mean": _mean_flops,
    # fused kernels (single autograd node = whole composed subgraph)
    "fused_gru_cell": _gru_fused_flops,
    "fused_gru_sequence": _gru_fused_flops,
    "fused_softmax": _softmax_fused_flops,
    "fused_log_softmax": _log_softmax_fused_flops,
    "fused_cross_entropy": _cross_entropy_fused_flops,
    "fused_layer_norm": _layer_norm_fused_flops,
    # data movement
    "transpose": _zero,
    "swapaxes": _zero,
    "reshape": _zero,
    "getitem": _zero,
    "take": _zero,
    "concatenate": _zero,
    "stack": _zero,
}


def covered_ops() -> Tuple[str, ...]:
    """The op names the FLOP model knows about, sorted."""
    return tuple(sorted(FLOP_FORMULAS))


def flops_for(op: str, parent_shapes: Sequence[Shape], out_shape: Shape) -> int:
    """Estimate forward FLOPs for one op from operand/output shapes.

    Unknown ops estimate 0 — the profiler still records their wall time
    and bytes, so nothing is lost, just not FLOP-counted.
    """
    formula = FLOP_FORMULAS.get(op)
    if formula is None:
        return 0
    try:
        return int(formula(parent_shapes, out_shape))
    except (IndexError, TypeError, ValueError):
        return 0
