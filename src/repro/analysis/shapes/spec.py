"""ShapeSpec: declared in/out shape contracts for ``repro.nn`` layers.

Layers declare their contract next to ``forward`` with zero runtime
cost — the decorator only attaches a parsed spec to the function::

    @shape_spec(x="* in_features", returns="* out_features")
    def forward(self, x):
        ...

Template grammar (space-separated tokens per argument):

- ``*``        leading wildcard: any number of leading axes (first
               token only);
- ``8``        integer literal, matched exactly;
- ``name``     resolved as an attribute on the module instance (dotted
               paths allowed: ``cell.input_dim``, ``head.out_features``);
               if no such attribute exists it is a *free variable* bound
               to the first size seen and required to match everywhere
               else in the same call (inputs and returns).

Verification happens only under :func:`verify_module_calls`, which
patches ``Module.__call__`` for the duration of a shape-check run: after
each call the declared spec (if any) is compared against the actual
argument/return shapes (witness sizes, so symbolic dims participate
transparently) and violations are recorded on the active
:class:`~.abstract.SymbolicTrace` as ``spec`` events.  The same patch
lifts floating real-Tensor outputs into :class:`AbstractTensor` so
models whose inputs are concrete id arrays (Embedding front-ends, the
MiniBert encoder) go symbolic from the first layer boundary onward.
"""

from __future__ import annotations

import contextlib
import inspect
import threading
from typing import Dict, Optional, Tuple

from ...nn.tensor import Tensor
from .abstract import AbstractTensor, SymbolicTrace, lift_tensor

__all__ = ["ShapeSpec", "shape_spec", "verify_module_calls"]

_MISSING = object()


class ShapeSpec:
    """Parsed shape templates for a ``forward`` method's args and return."""

    def __init__(self, returns: Optional[str] = None, **params: str):
        self.param_templates: Dict[str, Tuple[str, ...]] = {
            name: tuple(template.split()) for name, template in params.items()
        }
        self.return_template: Optional[Tuple[str, ...]] = (
            tuple(returns.split()) if returns is not None else None
        )

    def verify(self, module, arguments: Dict[str, object], out,
               trace: SymbolicTrace) -> None:
        bindings: Dict[str, int] = {}
        cls = type(module).__name__
        for name, template in self.param_templates.items():
            value = arguments.get(name)
            shape = getattr(value, "shape", None)
            if value is None or shape is None:
                continue
            self._match(module, template, shape, bindings,
                        f"{cls}.forward arg '{name}'", trace)
        if self.return_template is not None:
            primary = out[0] if isinstance(out, tuple) else out
            shape = getattr(primary, "shape", None)
            if shape is not None:
                self._match(module, self.return_template, shape, bindings,
                            f"{cls}.forward return", trace)

    def _match(self, module, template, shape, bindings, context, trace):
        tokens = template
        if tokens and tokens[0] == "*":
            tail = tokens[1:]
            if len(shape) < len(tail):
                trace.record(
                    "spec", context,
                    f"{context}: expected at least {len(tail)} trailing "
                    f"axes {' '.join(tail)}, got shape "
                    f"({', '.join(repr(e) for e in shape)})",
                )
                return
            entries = shape[len(shape) - len(tail):]
            tokens = tail
        else:
            if len(shape) != len(tokens):
                trace.record(
                    "spec", context,
                    f"{context}: expected rank {len(tokens)} "
                    f"({' '.join(tokens)}), got rank {len(shape)} "
                    f"({', '.join(repr(e) for e in shape)})",
                )
                return
            entries = shape
        for token, entry in zip(tokens, entries):
            actual = int(entry)
            expected = self._resolve(module, token, bindings)
            if expected is None:
                bindings[token] = actual
                continue
            if actual != expected:
                trace.record(
                    "spec", context,
                    f"{context}: axis '{token}' expected {expected}, "
                    f"got {entry!r} (= {actual})",
                )

    @staticmethod
    def _resolve(module, token: str, bindings: Dict[str, int]) -> Optional[int]:
        """Expected witness size for a token, or None for an unbound var."""
        if token.isdigit():
            return int(token)
        obj = module
        for part in token.split("."):
            obj = getattr(obj, part, _MISSING)
            if obj is _MISSING:
                break
        if obj is not _MISSING and isinstance(obj, int):
            return obj
        return bindings.get(token)


def shape_spec(returns: Optional[str] = None, **params: str):
    """Attach a :class:`ShapeSpec` contract to a ``forward`` method."""
    spec = ShapeSpec(returns=returns, **params)

    def decorate(fn):
        fn.__shape_spec__ = spec
        return fn

    return decorate


# Keyed by the forward function object — one entry per decorated layer
# class, so the bound stays generous.  Shared by every thread running a
# shape-check, hence the lock (manifest slot ``analysis.shapes.sig_cache``;
# found by the effect analysis as an unregistered mutable-global write).
_SIG_CACHE_MAX = 1024
_SIG_LOCK = threading.Lock()
_signature_cache: Dict[object, inspect.Signature] = {}


def _bind_arguments(forward, module, args, kwargs) -> Dict[str, object]:
    with _SIG_LOCK:
        sig = _signature_cache.get(forward)
        if sig is None:
            sig = inspect.signature(forward)
            if len(_signature_cache) >= _SIG_CACHE_MAX:
                _signature_cache.clear()
            _signature_cache[forward] = sig
    try:
        bound = sig.bind(module, *args, **kwargs)
    except TypeError:
        return {}
    bound.apply_defaults()
    return dict(bound.arguments)


@contextlib.contextmanager
def verify_module_calls(trace: SymbolicTrace, lift_outputs: bool = True):
    """Patch ``Module.__call__`` to verify specs and lift outputs.

    Active only inside the context; the original ``__call__`` is always
    restored.  Imported lazily to keep ``analysis.shapes`` importable
    while ``repro.nn`` is still initializing.
    """
    from ...nn.module import Module

    original = Module.__call__

    def _lift(out):
        if lift_outputs and trace.env is not None:
            if (isinstance(out, Tensor) and not isinstance(out, AbstractTensor)
                    and out.data.dtype.kind in "fc"):
                return lift_tensor(out, trace.env)
            if isinstance(out, tuple):
                return tuple(_lift(item) for item in out)
        return out

    def patched(self, *args, **kwargs):
        out = original(self, *args, **kwargs)
        spec = getattr(type(self).forward, "__shape_spec__", None)
        if spec is not None:
            arguments = _bind_arguments(type(self).forward, self, args, kwargs)
            spec.verify(self, arguments, out, trace)
        return _lift(out)

    Module.__call__ = patched
    try:
        yield
    finally:
        Module.__call__ = original
