"""repro.analysis.shapes — symbolic shape/dtype abstract interpretation.

Three layers (see ``docs/static_analysis.md``):

* :mod:`.dims` — symbolic dimension algebra: named :class:`Dim` atoms
  (``B``, ``T``, ``H_a`` ...) with small concrete *witness* sizes,
  affine :class:`DimExpr` combinations (``H_r + H_a + H_m`` from
  concatenation), a :class:`ShapeEnv` that maps witness sizes back to
  atoms, and a constraint kit for fail-fast config validation.
* :mod:`.abstract` — :class:`AbstractTensor`, a ``repro.nn.Tensor``
  subclass carrying only ``(shape, dtype, requires_grad)`` whose
  ``.data`` is a zero-stride witness view; the full nn op surface
  executes on it with zero real FLOPs, raising
  :class:`AbstractShapeError` on hard violations and recording
  suspicious-but-legal events (silent size-1 broadcasts, dtype drift)
  on the active :class:`SymbolicTrace`.
* :mod:`.spec` — the :func:`shape_spec` contract decorator for layer
  ``forward`` methods plus :func:`verify_module_calls`, which checks
  the declared templates at every module boundary.
* :mod:`.flops` — analytic FLOP estimates over the same op surface:
  ``flops_for(op, parent_shapes, out_shape)``, shared by the op
  profiler (:mod:`repro.obs.profile`) and the hot-path benchmarks.

The whole-model interpreter (:mod:`.interpreter`) and the per-method
probes (:mod:`.probes`) are intentionally *not* imported here: they
pull in ``repro.core`` / ``repro.baselines``, while this package must
stay importable from inside ``repro.nn`` (the layers import
:func:`shape_spec` at class-definition time).  Import them explicitly::

    from repro.analysis.shapes.interpreter import shape_check
"""

from .abstract import (
    AbstractShapeError,
    AbstractTensor,
    ShapeEvent,
    SymbolicTrace,
    abstract_concatenate,
    abstract_stack,
    abstract_where,
    broadcast_sym,
    current_trace,
    lift_tensor,
)
from .dims import (
    Constraint,
    ConstraintError,
    Dim,
    DimExpr,
    Divides,
    Eq,
    OneOf,
    Positive,
    ShapeEnv,
    as_expr,
    check_constraints,
    contains_guarded,
    enforce_constraints,
)
from .flops import FLOP_FORMULAS, covered_ops, flops_for
from .spec import ShapeSpec, shape_spec, verify_module_calls

__all__ = [
    "FLOP_FORMULAS", "covered_ops", "flops_for",
    "Dim", "DimExpr", "ShapeEnv", "as_expr", "contains_guarded",
    "Constraint", "ConstraintError", "Eq", "Divides", "Positive", "OneOf",
    "check_constraints", "enforce_constraints",
    "AbstractTensor", "AbstractShapeError", "ShapeEvent", "SymbolicTrace",
    "current_trace", "lift_tensor", "broadcast_sym",
    "abstract_concatenate", "abstract_stack", "abstract_where",
    "ShapeSpec", "shape_spec", "verify_module_calls",
]
