"""Whole-model shape checking: run method probes, collect S-findings.

Drives every registered probe (:mod:`.probes`) under a
:class:`~.abstract.SymbolicTrace` with module-boundary spec
verification, then maps the recorded trace events to stable finding
codes:

========  ====================  ========
code      name                  severity
========  ====================  ========
S001      shape-mismatch        error
S002      silent-broadcast      error
S003      dtype-deviation       warning
S004      grad-drop             error
S005      spec-violation        error
S006      probe-error           error
========  ====================  ========

``S001`` covers both hard failures (an op raised
:class:`~.abstract.AbstractShapeError`) and soft contract misses
(a probe's ``expect`` found the wrong output shape).  ``S006`` means
the probe itself crashed — the model under test could not even be
*constructed or run* at witness sizes, which is itself a finding.

Reporters mirror :mod:`repro.analysis.lint` (text + JSON, stable key
order) so CI tooling can consume both the same way.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .abstract import AbstractShapeError, SymbolicTrace
from .spec import verify_module_calls

__all__ = [
    "ShapeFinding", "MethodShapeReport", "ShapeCheckReport",
    "check_method_shapes", "shape_check", "format_text", "format_json",
    "S_CODES",
]

#: trace-event kind → (finding code, severity)
_KIND_CODES: Dict[str, tuple] = {
    "mismatch": ("S001", "error"),
    "stretch": ("S002", "error"),
    "dtype": ("S003", "warning"),
    "grad": ("S004", "error"),
    "spec": ("S005", "error"),
    "probe": ("S006", "error"),
}

#: code → one-line description (the docs table, importable)
S_CODES: Dict[str, str] = {
    "S001": "shape-mismatch: op or output shape violates the contract",
    "S002": "silent-broadcast: size-1 axis silently stretched to batch",
    "S003": "dtype-deviation: float result deviates from DEFAULT_DTYPE",
    "S004": "grad-drop: loss lost requires_grad; backward is a no-op",
    "S005": "spec-violation: @shape_spec template mismatch at a module call",
    "S006": "probe-error: the probe crashed before checks completed",
}


@dataclass(frozen=True)
class ShapeFinding:
    """One shape-check finding for one method."""

    code: str
    severity: str
    method: str
    message: str

    def format(self) -> str:
        return f"{self.method}: {self.code} [{self.severity}] {self.message}"


@dataclass
class MethodShapeReport:
    """All findings from abstractly executing one method's probe."""

    method: str
    findings: List[ShapeFinding] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings


@dataclass
class ShapeCheckReport:
    """Aggregate over methods, as produced by :func:`shape_check`."""

    reports: List[MethodShapeReport] = field(default_factory=list)

    @property
    def findings(self) -> List[ShapeFinding]:
        return [f for report in self.reports for f in report.findings]

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.code] = out.get(finding.code, 0) + 1
        return out


def _wanted(code: str, select: Optional[Sequence[str]],
            ignore: Optional[Sequence[str]]) -> bool:
    if select and code.upper() not in {c.upper() for c in select}:
        return False
    if ignore and code.upper() in {c.upper() for c in ignore}:
        return False
    return True


def check_method_shapes(method: str,
                        select: Optional[Sequence[str]] = None,
                        ignore: Optional[Sequence[str]] = None,
                        ) -> MethodShapeReport:
    """Abstractly execute one registered method; return its findings."""
    from .probes import PROBES, ProbeContext

    report = MethodShapeReport(method=method)
    probe_fn = PROBES.get(method)
    start = time.perf_counter()
    if probe_fn is None:
        report.findings.append(ShapeFinding(
            code="S006", severity="error", method=method,
            message=f"no shape probe registered for method {method!r}",
        ))
        report.seconds = time.perf_counter() - start
        return report

    ctx = ProbeContext()
    trace = SymbolicTrace(ctx.env)
    try:
        with trace, verify_module_calls(trace):
            probe_fn(ctx)
    except AbstractShapeError as exc:
        trace.record("mismatch", "probe", str(exc))
    except Exception as exc:  # probe crashed — that IS the finding
        trace.record("probe", "probe",
                     f"{type(exc).__name__}: {exc}")
    report.seconds = time.perf_counter() - start

    for event in trace.events:
        code, severity = _KIND_CODES.get(event.kind, ("S006", "error"))
        if not _wanted(code, select, ignore):
            continue
        report.findings.append(ShapeFinding(
            code=code, severity=severity, method=method,
            message=event.message,
        ))
    return report


def shape_check(methods: Optional[Sequence[str]] = None,
                select: Optional[Sequence[str]] = None,
                ignore: Optional[Sequence[str]] = None) -> ShapeCheckReport:
    """Shape-check registered methods (all of them by default)."""
    if methods is None:
        from ...experiments import available_methods
        methods = available_methods()
    report = ShapeCheckReport()
    for method in methods:
        report.reports.append(
            check_method_shapes(method, select=select, ignore=ignore))
    return report


# ---------------------------------------------------------------------- #
# Reporters
# ---------------------------------------------------------------------- #
def format_text(report: ShapeCheckReport) -> str:
    """Human-readable report: per-method status lines plus a summary."""
    lines: List[str] = []
    for method_report in report.reports:
        status = "ok" if method_report.ok else \
            f"{len(method_report.findings)} finding(s)"
        lines.append(f"== {method_report.method} == {status} "
                     f"({method_report.seconds * 1000:.0f} ms)")
        for finding in method_report.findings:
            lines.append(f"  {finding.code} [{finding.severity}] "
                         f"{finding.message}")
    counts = report.counts()
    if counts:
        summary = ", ".join(f"{code}×{n}" for code, n in sorted(counts.items()))
        lines.append(f"{len(report.findings)} finding(s) across "
                     f"{len(report.reports)} method(s): {summary}")
    else:
        lines.append(f"0 findings across {len(report.reports)} method(s)")
    return "\n".join(lines)


def format_json(report: ShapeCheckReport) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "methods_checked": len(report.reports),
        "counts": report.counts(),
        "methods": [
            {
                "method": r.method,
                "ok": r.ok,
                "seconds": round(r.seconds, 6),
                "findings": [
                    {"code": f.code, "severity": f.severity,
                     "method": f.method, "message": f.message}
                    for f in r.findings
                ],
            }
            for r in report.reports
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
