"""repro.analysis — correctness tooling for the numpy autograd stack.

Three parts (see ``docs/static_analysis.md``):

* :mod:`repro.analysis.lint` — AST-based lint framework with
  repo-specific rules (in-place ``Tensor.data`` mutation, unseeded
  ``np.random``, ``super().__init__()`` ordering, ...), per-rule
  severities, ``# repro: noqa[RULE]`` suppressions and text/JSON
  reporters.  Exposed as ``repro lint``.
* :mod:`repro.analysis.graphcheck` — dynamic checker that walks a built
  autograd graph from a loss tensor and reports detached subgraphs,
  parameters that receive no gradient, shape/dtype inconsistencies and
  double-backward hazards.  Exposed as ``repro check-model``.
* :mod:`repro.analysis.anomaly` — opt-in NaN/Inf sanitizer (à la
  ``torch.autograd.set_detect_anomaly``) that records op provenance and
  raises with the originating op's stack snippet.  Exposed as
  ``repro run --detect-anomaly`` and ``SDEAConfig.detect_anomaly``.
* :mod:`repro.analysis.shapes` — symbolic shape/dtype abstract
  interpreter: :class:`AbstractTensor` executes any ``Module.forward``
  with zero real FLOPs over named symbolic dims, catching shape
  mismatches, silent size-1 broadcasts, dtype drift and grad-flag
  drops statically.  Exposed as ``repro shape-check``.  (The
  whole-model interpreter lives in
  :mod:`repro.analysis.shapes.interpreter` and is imported lazily —
  it depends on ``repro.core``/``repro.baselines``.)
* :mod:`repro.analysis.ir` — training-step IR: captures one fwd+bwd
  step into an SSA-style op graph, runs compiler-style passes
  (liveness/memory planning, dead ops, dropped gradients, fusion
  legality, value CSE, dtype escapes — codes G001–G006) and verifies
  the IR with a bit-for-bit replay executor.  Exposed as ``repro ir``.
  (Imported lazily like the shape interpreter — capturing a method
  pulls in ``repro.core``.)

Finding records and gate policy are shared across the dynamic tools in
:mod:`repro.analysis.findings`.
"""

from .anomaly import AnomalyError, OpProvenance, detect_anomaly, is_anomaly_enabled
from .findings import (
    GATING_SEVERITIES,
    Finding,
    count_findings,
    filter_findings,
    findings_to_json,
    format_findings_text,
    gate_findings,
)
from .graphcheck import (
    GraphCaptureHarness,
    GraphIssue,
    GraphReport,
    check_graph,
    check_method,
    walk_graph,
)
from .lint import (
    LintReport,
    Rule,
    Violation,
    all_rules,
    format_json,
    format_text,
    lint_paths,
    lint_source,
)
from .shapes import (
    AbstractShapeError,
    AbstractTensor,
    ConstraintError,
    Dim,
    DimExpr,
    ShapeEnv,
    ShapeSpec,
    SymbolicTrace,
    enforce_constraints,
    lift_tensor,
    shape_spec,
    verify_module_calls,
)

__all__ = [
    "Rule", "Violation", "LintReport",
    "all_rules", "lint_source", "lint_paths", "format_text", "format_json",
    "Finding", "GATING_SEVERITIES", "gate_findings", "count_findings",
    "filter_findings", "format_findings_text", "findings_to_json",
    "GraphIssue", "GraphReport", "GraphCaptureHarness",
    "walk_graph", "check_graph", "check_method",
    "AnomalyError", "OpProvenance", "detect_anomaly", "is_anomaly_enabled",
    "Dim", "DimExpr", "ShapeEnv", "ConstraintError", "enforce_constraints",
    "AbstractTensor", "AbstractShapeError", "SymbolicTrace", "lift_tensor",
    "ShapeSpec", "shape_spec", "verify_module_calls",
]
