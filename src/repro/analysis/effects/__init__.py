"""Shard-safety effect analysis.

Interprocedural effect inference over the ``repro`` package: an AST
call graph (:mod:`.callgraph`), a per-function effect lattice with a
bottom-up SCC fixpoint, and findings C001–C006 verifying the code
against the global-state manifest and ``@shard_safe`` contracts in
:mod:`repro.concurrency` (:mod:`.analyzer`).

CLI: ``repro effects [--entry NAME] [--select/--ignore Cxxx] [--format
json]``; gated in CI through ``make effects-check``.
"""

from .analyzer import (
    DEFAULT_ROOT, Effect, EffectReport, analyze_effects, effects_of,
)
from .callgraph import PackageGraph, scan_package

__all__ = [
    "DEFAULT_ROOT", "Effect", "EffectReport", "analyze_effects",
    "effects_of", "PackageGraph", "scan_package",
]
