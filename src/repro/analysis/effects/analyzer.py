"""Interprocedural effect inference and shard-safety verification.

Builds on the package call graph (:mod:`.callgraph`):

1. **Local effect extraction** — per function, a set of effect atoms:

   =====================  ==============================================
   kind                   detail
   =====================  ==============================================
   ``writes-global``      ``module:attr`` of the mutated/rebound global
   ``reads-global``       ``module:attr`` of a read mutable global/slot
   ``rng-draw``           ``np.random``, ``module:name`` (shared
                          generator), ``arg:<param>``, ``self``, ``local``
   ``io``                 ``open``, ``print``, ``fs``, ``handle-write``,
                          ``os``, ``serialize``
   ``mutates-arg``        the parameter name
   ``thread-local``       ``module:attr`` of the ``threading.local``
   =====================  ==============================================

   A write to a manifest slot through its sanctioned installer is
   marked *safe* when the slot is classified ``synchronized``,
   ``thread-local`` or ``immutable`` — callers inherit the effect for
   reporting but it never violates a shard contract.

2. **Bottom-up fixpoint** over call-graph SCCs.  All kinds propagate
   caller-ward unchanged except ``mutates-arg``, which translates
   through the call site's argument-alias map (and drops when the
   mutated object is not one of the caller's own parameters).

3. **Findings** (gating codes; suppress with ``# repro: noqa[Cxxx]``
   on the offending line or the enclosing ``def`` line):

   ====  ========  =====================================================
   code  severity  meaning
   ====  ========  =====================================================
   C001  error     write to a module global not registered in
                   :data:`repro.concurrency.MANIFEST`
   C002  error     RNG draw from shared state (legacy ``np.random.*``
                   or a module-level generator)
   C003  error     manifest-slot write bypassing the slot's sanctioned
                   installer functions
   C004  error     ``@shard_safe`` entry has an inferred effect its
                   contract does not declare
   C005  error     manifest drift: a slot, installer or guard no longer
                   resolves against the scanned source
   C006  warning   ``@shard_safe`` entry transitively performs I/O
                   without declaring ``io=True``
   ====  ========  =====================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..findings import Finding, count_findings, filter_findings, \
    format_findings_text
from ...concurrency import MANIFEST, NEEDS_MERGE, SYNCHRONIZED, \
    THREAD_LOCAL, IMMUTABLE, GlobalSlot, ShardContract
from .callgraph import (
    GLOBAL_MUTABLE, GLOBAL_THREADLOCAL, CallSite, FunctionInfo, ModuleInfo,
    PackageGraph, _resolve_relative, attr_chain, call_sites, scan_package,
    strongly_connected,
)

__all__ = [
    "Effect", "EffectReport", "analyze_effects", "effects_of",
    "EFFECT_KINDS", "DEFAULT_ROOT",
]

#: Default scan root: the installed ``repro`` package directory.
DEFAULT_ROOT = Path(__file__).resolve().parents[2]

EFFECT_KINDS = ("writes-global", "reads-global", "rng-draw", "io",
                "mutates-arg", "thread-local")

#: numpy Generator / legacy mtrand drawing methods.
_RNG_DRAW_METHODS = {
    "random", "integers", "choice", "shuffle", "permutation", "permuted",
    "normal", "uniform", "standard_normal", "standard_exponential",
    "standard_gamma", "binomial", "poisson", "beta", "gamma",
    "exponential", "multivariate_normal", "bytes", "spawn",
    "rand", "randn", "randint", "random_sample", "seed",
}

#: Mutating container methods — receiver is modified in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "add", "discard", "setdefault", "popitem", "sort", "reverse", "fill",
}

#: Filesystem-touching method names (pathlib vocabulary).
#: Distinctively pathlib-flavoured names only — generic names such as
#: ``replace``/``save``/``load`` collide with str methods and model
#: checkpoints (numpy's savers are matched on the ``np.`` receiver).
_FS_METHODS = {
    "write_text", "read_text", "write_bytes", "read_bytes", "mkdir",
    "unlink", "touch", "rename", "rmdir", "symlink_to", "hardlink_to",
}

#: os-module functions with filesystem/process effects.
_OS_IO = {
    "makedirs", "remove", "rename", "replace", "rmdir", "unlink",
    "mkdir", "listdir", "scandir", "system", "popen", "chdir",
}

#: Attribute names that conventionally hold file handles / sinks.
_HANDLE_NAMES = {
    "_fh", "fh", "fp", "file", "stream", "sink", "stdout", "stderr",
    "handle", "buffer", "_file", "out", "_out",
}


@dataclass(frozen=True)
class Effect:
    """One effect atom; ``safe`` marks sanctioned-installer slot writes."""

    kind: str
    detail: str
    safe: bool = False

    def render(self) -> str:
        suffix = " [sanctioned]" if self.safe else ""
        return f"{self.kind}({self.detail}){suffix}"


# ===================================================================== #
# Local effect extraction
# ===================================================================== #
class _LocalEffects:
    """Extracts one function's own effects (no propagation)."""

    def __init__(self, graph: PackageGraph, mi: ModuleInfo, fi: FunctionInfo,
                 slots_by_location: Dict[Tuple[str, str], GlobalSlot],
                 installer_index: Dict[Tuple[str, str], Set[str]]):
        self.graph = graph
        self.mi = mi
        self.fi = fi
        self.slots = slots_by_location
        self.installers = installer_index
        self.effects: Dict[Effect, str] = {}
        self.declared_globals: Set[str] = set()
        self.local_names: Set[str] = set()
        # Function-level `from x import y` bindings — patch points are
        # sometimes imported right where they are monkeypatched.
        self.local_from: Dict[str, Tuple[str, str]] = {}
        self.local_plain_imports: Set[str] = set()

    def origin(self, lineno: int) -> str:
        return f"{self.fi.full_name}:{lineno}"

    def add(self, kind: str, detail: str, lineno: int, safe: bool = False) -> None:
        eff = Effect(kind, detail, safe)
        self.effects.setdefault(eff, self.origin(lineno))

    # -- scope bookkeeping --------------------------------------------- #
    def _collect_scope(self) -> None:
        for node in ast.walk(self.fi.node):
            if isinstance(node, ast.Global):
                self.declared_globals.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self.local_names.add(node.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    self.local_names.add(bound)
                    if isinstance(node, ast.ImportFrom) and alias.name != "*":
                        target = _resolve_relative(
                            self.mi.name, self.mi.is_package, node)
                        self.local_from[alias.asname or alias.name] = \
                            (target, alias.name)
                    elif isinstance(node, ast.Import):
                        self.local_plain_imports.add(bound)
        self.local_names.update(self.fi.params)
        self.local_names -= self.declared_globals

    def _is_module_global(self, name: str) -> bool:
        return name in self.mi.globals and name not in self.local_names

    def _global_kind(self, name: str) -> str:
        return self.mi.globals.get(name, "")

    # -- slot helpers -------------------------------------------------- #
    def _slot_for(self, module: str, attr: str) -> Optional[GlobalSlot]:
        return self.slots.get((module, attr))

    def _record_global_write(self, module: str, attr: str, lineno: int) -> None:
        slot = self._slot_for(module, attr)
        detail = f"{module}:{attr}"
        if slot is None:
            self.add("writes-global", detail, lineno)
            return
        sanctioned = (self.fi.module, self.fi.qualname) in \
            {pair: None for pair in slot.installer_pairs()}
        safe = sanctioned and slot.classification in (
            SYNCHRONIZED, THREAD_LOCAL, IMMUTABLE)
        self.add("writes-global", detail, lineno, safe=safe)

    def _record_global_read(self, module: str, attr: str, lineno: int) -> None:
        self.add("reads-global", f"{module}:{attr}", lineno)

    # -- store targets ------------------------------------------------- #
    def _handle_store_target(self, target: ast.expr, lineno: int) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.declared_globals:
                self._record_global_write(self.mi.name, target.id, lineno)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_store_target(elt, lineno)
            return
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        chain = attr_chain(base)
        if not chain:
            return
        head = chain[0]
        if head in ("self", "cls"):
            if head in self.fi.params:
                self.add("mutates-arg", head, lineno)
            return
        if head in self.fi.params and head not in self.declared_globals:
            self.add("mutates-arg", head, lineno)
            return
        if self._is_module_global(head):
            if self._global_kind(head) == GLOBAL_THREADLOCAL:
                self.add("thread-local", f"{self.mi.name}:{head}", lineno)
            else:
                self._record_global_write(self.mi.name, head, lineno)
            return
        # Cross-module rebind: `metrics._default = x` via a module alias,
        # or a class-attribute patch `Tensor._make_child = fn` (the class
        # may have been imported at function level, so check local
        # from-imports before dismissing `head` as a local name).
        resolved = self._resolve_external(chain)
        if resolved is not None:
            module, attr = resolved
            if module.startswith(self.graph.package) and attr:
                self._record_global_write(module, attr, lineno)

    def _resolve_external(self, chain: List[str]) -> Optional[Tuple[str, str]]:
        head = chain[0]
        if head in self.local_names and head not in self.local_from \
                and head not in self.local_plain_imports:
            return None  # a plain local, or shadowed import
        module = self.mi.imports.get(head)
        if module is not None:
            mod, idx = module, 1
            while idx < len(chain) - 1 and f"{mod}.{chain[idx]}" in self.graph.modules:
                mod = f"{mod}.{chain[idx]}"
                idx += 1
            return mod, ".".join(chain[idx:])
        for table in (self.mi.from_names, self.local_from):
            if head in table:
                target_module, orig = table[head]
                if self.graph.class_in(target_module, orig) is not None:
                    return target_module, ".".join([orig] + chain[1:])
        if head in self.mi.classes:
            return self.mi.name, ".".join(chain)
        return None

    # -- calls --------------------------------------------------------- #
    def _handle_call(self, node: ast.Call) -> None:
        func = node.func
        lineno = node.lineno
        if isinstance(func, ast.Name):
            name = func.id
            if name in ("open", "print", "input") and name not in self.local_names:
                self.add("io", name if name != "input" else "open", lineno)
            elif name in ("getattr", "setattr", "delattr") and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name) \
                        and self._is_module_global(first.id) \
                        and self._global_kind(first.id) == GLOBAL_THREADLOCAL:
                    self.add("thread-local",
                             f"{self.mi.name}:{first.id}", lineno)
            return
        chain = attr_chain(func)
        if not chain:
            return
        head, last = chain[0], chain[-1]
        head_module = self.mi.imports.get(head)

        if last in _RNG_DRAW_METHODS:
            self._handle_rng(chain, head, head_module, lineno)

        if head_module == "numpy" and last in ("save", "savez",
                                               "savez_compressed", "load",
                                               "loadtxt", "savetxt"):
            self.add("io", "fs", lineno)
        elif last in _FS_METHODS and head_module != "numpy" \
                and not self._receiver_is_numpy(chain):
            self.add("io", "fs", lineno)
        if head_module == "os" and (chain[1] if len(chain) > 1 else "") in _OS_IO:
            self.add("io", "os", lineno)
        if head_module in ("json", "pickle", "csv") and last in ("dump", "load"):
            self.add("io", "serialize", lineno)
        if head_module in ("shutil", "subprocess", "tempfile"):
            self.add("io", "os", lineno)
        if head_module == "sys" and len(chain) >= 2 \
                and chain[1] in ("stdout", "stderr"):
            self.add("io", "handle-write", lineno)
        if last in ("write", "writelines", "flush") \
                and any(part in _HANDLE_NAMES for part in chain[:-1]):
            self.add("io", "handle-write", lineno)

        # Mutation / read of a module-global container through a method.
        if len(chain) >= 2 and self._is_module_global(head):
            kind = self._global_kind(head)
            if kind == GLOBAL_THREADLOCAL:
                self.add("thread-local", f"{self.mi.name}:{head}", lineno)
            elif last in _MUTATOR_METHODS and len(chain) == 2:
                self._record_global_write(self.mi.name, head, lineno)
            else:
                self._maybe_read(head, lineno)
        # Mutator method on a parameter (batch.append(x), cfg.update(d)).
        elif last in _MUTATOR_METHODS and len(chain) >= 2:
            if head in ("self", "cls"):
                self.add("mutates-arg", "self", lineno)
            elif head in self.fi.params:
                self.add("mutates-arg", head, lineno)

    def _receiver_is_numpy(self, chain: List[str]) -> bool:
        return bool(chain) and self.mi.imports.get(chain[0]) == "numpy"

    def _handle_rng(self, chain: List[str], head: str,
                    head_module: Optional[str], lineno: int) -> None:
        if head_module == "numpy" and len(chain) >= 3 and chain[1] == "random":
            self.add("rng-draw", "np.random", lineno)
            return
        if head in ("self", "cls"):
            self.add("rng-draw", "self", lineno)
            return
        if self._is_module_global(head):
            self.add("rng-draw", f"{self.mi.name}:{head}", lineno)
            return
        if head in self.fi.params:
            self.add("rng-draw", f"arg:{head}", lineno)
            return
        if head in self.local_names:
            self.add("rng-draw", "local", lineno)
            return
        # Possibly a generator held in another package module.  Not a
        # draw if the chain names a package *function* that merely
        # shares a Generator method's name (``init.normal(...)``) —
        # the callee's own effects cover that case via the call graph.
        if len(chain) < 2:
            return
        resolved = self._resolve_external(chain[:-1])
        if resolved is not None and resolved[0].startswith(self.graph.package):
            module, attr = resolved
            if attr and self.graph.module_function(module, attr) is None:
                self.add("rng-draw", f"{module}:{attr}", lineno)

    # -- reads --------------------------------------------------------- #
    def _maybe_read(self, name: str, lineno: int) -> None:
        kind = self._global_kind(name)
        slot = self._slot_for(self.mi.name, name)
        if slot is not None or kind == GLOBAL_MUTABLE:
            self._record_global_read(self.mi.name, name, lineno)

    # -- driver -------------------------------------------------------- #
    def run(self) -> Dict[Effect, str]:
        self._collect_scope()
        for node in ast.walk(self.fi.node):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    self._handle_store_target(tgt, node.lineno)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if getattr(node, "value", None) is not None or \
                        isinstance(node, ast.AugAssign):
                    self._handle_store_target(node.target, node.lineno)
            elif isinstance(node, ast.Delete):
                for tgt in node.targets:
                    self._handle_store_target(tgt, node.lineno)
            elif isinstance(node, ast.Call):
                self._handle_call(node)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if self._is_module_global(node.id):
                    gk = self._global_kind(node.id)
                    if gk == GLOBAL_THREADLOCAL:
                        self.add("thread-local",
                                 f"{self.mi.name}:{node.id}", node.lineno)
                    else:
                        self._maybe_read(node.id, node.lineno)
        return self.effects


# ===================================================================== #
# Contracts (static discovery of @shard_safe)
# ===================================================================== #
def _literal(node: ast.expr):
    try:
        return ast.literal_eval(node)
    except (ValueError, SyntaxError):
        return None


def _contract_from_decorator(fi: FunctionInfo) -> Optional[ShardContract]:
    for dec in fi.node.decorator_list:
        call = dec if isinstance(dec, ast.Call) else None
        target = call.func if call else dec
        chain = attr_chain(target)
        if not chain or chain[-1] != "shard_safe":
            continue
        name = f"{fi.module}.{fi.qualname}"
        merges: Tuple[str, ...] = ()
        owns: Tuple[str, ...] = ()
        mutates: Tuple[str, ...] = ()
        io = False
        note = ""
        if call:
            if call.args:
                lit = _literal(call.args[0])
                if isinstance(lit, str):
                    name = lit
            for kw in call.keywords:
                lit = _literal(kw.value) if kw.value is not None else None
                if kw.arg == "merges" and lit is not None:
                    merges = tuple(lit)
                elif kw.arg == "owns" and lit is not None:
                    owns = tuple(lit)
                elif kw.arg == "mutates" and lit is not None:
                    mutates = tuple(lit)
                elif kw.arg == "io":
                    io = bool(lit)
                elif kw.arg == "note" and isinstance(lit, str):
                    note = lit
        return ShardContract(name=name, merges=merges, owns=owns,
                             mutates=mutates, io=io, note=note)
    return None


# ===================================================================== #
# Report
# ===================================================================== #
@dataclass
class EntrySummary:
    """One contracted entry point: its declaration and inferred effects."""

    function: str
    lineno: int
    contract: ShardContract
    effects: List[Tuple[str, str]] = field(default_factory=list)  # (render, origin)


@dataclass
class EffectReport:
    findings: List[Finding]
    modules: int = 0
    functions: int = 0
    edges: int = 0
    sccs: int = 0
    entries: List[EntrySummary] = field(default_factory=list)
    suppressed: int = 0

    def to_text(self, verbose: bool = False) -> str:
        lines = [
            f"effects: {self.functions} functions / {self.modules} modules, "
            f"{self.edges} call edges, {self.sccs} SCCs, "
            f"{len(self.entries)} shard contracts"
            + (f", {self.suppressed} suppressed" if self.suppressed else ""),
        ]
        for entry in self.entries:
            lines.append(f"  contract {entry.contract.describe()} "
                         f"at {entry.function}:{entry.lineno}")
            if verbose:
                for rendered, origin in sorted(entry.effects):
                    lines.append(f"    {rendered}  <- {origin}")
        lines.append(format_findings_text(self.findings))
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "counts": count_findings(self.findings),
            "findings": [finding.to_dict() for finding in self.findings],
        }
        payload["stats"] = {
            "modules": self.modules, "functions": self.functions,
            "edges": self.edges, "sccs": self.sccs,
            "suppressed": self.suppressed,
        }
        payload["entries"] = [
            {
                "function": entry.function,
                "line": entry.lineno,
                "contract": {
                    "name": entry.contract.name,
                    "merges": list(entry.contract.merges),
                    "owns": list(entry.contract.owns),
                    "mutates": list(entry.contract.mutates),
                    "io": entry.contract.io,
                },
                "effects": [
                    {"effect": rendered, "origin": origin}
                    for rendered, origin in sorted(entry.effects)
                ],
            }
            for entry in self.entries
        ]
        return payload


# ===================================================================== #
# The analysis driver
# ===================================================================== #
class _Analysis:
    def __init__(self, root: Path, package: str):
        self.graph = scan_package(root, package)
        self.slots_by_location: Dict[Tuple[str, str], GlobalSlot] = {
            (slot.module, slot.attr): slot for slot in MANIFEST
        }
        self.installer_index: Dict[Tuple[str, str], Set[str]] = {}
        for slot in MANIFEST:
            for pair in slot.installer_pairs():
                self.installer_index.setdefault(pair, set()).add(slot.name)
        self.local: Dict[str, Dict[Effect, str]] = {}
        self.sites: Dict[str, List[CallSite]] = {}
        self.effects: Dict[str, Dict[Effect, str]] = {}
        self.findings: List[Finding] = []
        self.suppressed = 0
        self.scc_count = 0

    # -- pipeline ------------------------------------------------------ #
    def run(self) -> None:
        for full_name, fi in self.graph.functions.items():
            mi = self.graph.modules[fi.module]
            extractor = _LocalEffects(self.graph, mi, fi,
                                      self.slots_by_location,
                                      self.installer_index)
            self.local[full_name] = extractor.run()
            self.sites[full_name] = call_sites(self.graph, fi)
        self._fixpoint()
        self._check_manifest()
        self._check_locals()
        self._check_contracts()

    def _fixpoint(self) -> None:
        nodes = list(self.graph.functions)
        edge_sets: Dict[str, Set[str]] = {
            name: {site.callee for site in self.sites[name]
                   if site.callee in self.graph.functions}
            for name in nodes
        }
        components = strongly_connected(nodes, edge_sets)
        self.scc_count = len(components)
        self.effects = {name: dict(self.local[name]) for name in nodes}
        for component in components:
            members = set(component)
            changed = True
            while changed:
                changed = False
                for name in component:
                    for site in self.sites[name]:
                        callee_effects = self.effects.get(site.callee)
                        if callee_effects is None:
                            continue
                        mine = self.effects[name]
                        for eff, origin in list(callee_effects.items()):
                            for translated in self._translate(eff, site, name):
                                if translated not in mine:
                                    mine[translated] = origin
                                    if name in members:
                                        changed = True
                # Single pass suffices for acyclic components.
                if len(component) == 1 and component[0] not in \
                        edge_sets.get(component[0], set()):
                    break

    def _translate(self, eff: Effect, site: CallSite,
                   caller: str) -> List[Effect]:
        if eff.kind != "mutates-arg":
            return [eff]
        mapped = site.arg_map.get(eff.detail)
        if mapped is None:
            return []
        return [Effect("mutates-arg", mapped, eff.safe)]

    # -- findings ------------------------------------------------------ #
    def _suppressed_at(self, fi: FunctionInfo, lineno: int, code: str) -> bool:
        mi = self.graph.modules[fi.module]
        for candidate in (lineno, fi.lineno):
            codes = mi.noqa.get(candidate)
            if codes and code in codes:
                return True
        return False

    def _emit(self, code: str, severity: str, kind: str, message: str,
              fi: FunctionInfo, lineno: int) -> None:
        if self._suppressed_at(fi, lineno, code):
            self.suppressed += 1
            return
        rel = self.graph.modules[fi.module].path
        try:
            rel = rel.relative_to(self.graph.root.parent)
        except ValueError:
            pass
        self.findings.append(Finding(
            kind=kind, severity=severity, message=message, code=code,
            where=f"{rel}:{lineno}",
        ))

    def _check_locals(self) -> None:
        for full_name, effects in self.local.items():
            fi = self.graph.functions[full_name]
            for eff, origin in effects.items():
                lineno = int(origin.rsplit(":", 1)[1])
                if eff.kind == "writes-global":
                    module, attr = eff.detail.split(":", 1)
                    slot = self.slots_by_location.get((module, attr))
                    if slot is None:
                        self._emit(
                            "C001", "error", "unregistered-global-write",
                            f"{fi.full_name} writes module global "
                            f"'{eff.detail}' that is not registered in "
                            f"repro.concurrency.MANIFEST — register a "
                            f"GlobalSlot with a shard-safety classification "
                            f"or make the state local",
                            fi, lineno)
                    elif (fi.module, fi.qualname) not in slot.installer_pairs():
                        self._emit(
                            "C003", "error", "slot-bypass-write",
                            f"{fi.full_name} writes manifest slot "
                            f"'{slot.name}' ({eff.detail}) but is not one of "
                            f"its sanctioned installers "
                            f"{[q for _, q in slot.installer_pairs()]} — "
                            f"route the write through the installer",
                            fi, lineno)
                elif eff.kind == "rng-draw" and (
                        eff.detail == "np.random"
                        or (":" in eff.detail
                            and not eff.detail.startswith("arg:"))):
                    what = ("legacy numpy global RNG"
                            if eff.detail == "np.random"
                            else f"shared module-level generator "
                                 f"'{eff.detail}'")
                    self._emit(
                        "C002", "error", "shared-rng-draw",
                        f"{fi.full_name} draws from {what}; thread an "
                        f"explicit seeded np.random.Generator through the "
                        f"call instead so shards can fork streams",
                        fi, lineno)

    def _check_manifest(self) -> None:
        where = "src/repro/concurrency.py:MANIFEST"
        for slot in MANIFEST:
            mi = self.graph.modules.get(slot.module)
            if mi is None:
                self.findings.append(Finding(
                    kind="stale-manifest", severity="error", code="C005",
                    message=f"slot '{slot.name}': module {slot.module} is "
                            f"not part of the scanned package",
                    where=where))
                continue
            attr_head = slot.attr.split(".", 1)[0]
            if "." in slot.attr:
                ok = attr_head in mi.classes and \
                    slot.attr.split(".", 1)[1] in mi.classes[attr_head].methods
            else:
                ok = attr_head in mi.globals
            if not ok:
                self.findings.append(Finding(
                    kind="stale-manifest", severity="error", code="C005",
                    message=f"slot '{slot.name}': attribute "
                            f"{slot.module}:{slot.attr} no longer exists",
                    where=where))
            if slot.classification == THREAD_LOCAL and "." not in slot.attr \
                    and mi.globals.get(attr_head) != GLOBAL_THREADLOCAL:
                self.findings.append(Finding(
                    kind="stale-manifest", severity="error", code="C005",
                    message=f"slot '{slot.name}' is classified thread-local "
                            f"but {slot.module}:{slot.attr} is not a "
                            f"threading.local()",
                    where=where))
            if slot.classification == SYNCHRONIZED and not slot.guard:
                self.findings.append(Finding(
                    kind="stale-manifest", severity="error", code="C005",
                    message=f"slot '{slot.name}' is classified synchronized "
                            f"but names no guard lock",
                    where=where))
            if slot.guard and slot.guard not in mi.globals:
                self.findings.append(Finding(
                    kind="stale-manifest", severity="error", code="C005",
                    message=f"slot '{slot.name}': guard {slot.module}:"
                            f"{slot.guard} no longer exists",
                    where=where))
            for pair in slot.installer_pairs():
                if ".".join(pair) not in self.graph.functions:
                    self.findings.append(Finding(
                        kind="stale-manifest", severity="error", code="C005",
                        message=f"slot '{slot.name}': installer "
                                f"{pair[0]}.{pair[1]} no longer exists",
                        where=where))

    def _check_contracts(self) -> None:
        self.entries: List[EntrySummary] = []
        slots_by_name = {slot.name: slot for slot in MANIFEST}
        for full_name, fi in sorted(self.graph.functions.items()):
            contract = _contract_from_decorator(fi)
            if contract is None:
                continue
            effects = self.effects.get(full_name, {})
            summary = EntrySummary(
                function=full_name, lineno=fi.lineno, contract=contract,
                effects=[(eff.render(), origin)
                         for eff, origin in effects.items()])
            self.entries.append(summary)
            allowed_writes = set(contract.owns) | set(contract.merges)
            has_undeclared_io = False
            io_origin = ""
            for eff, origin in effects.items():
                if eff.safe:
                    continue
                if eff.kind == "writes-global":
                    module, attr = eff.detail.split(":", 1)
                    slot = self.slots_by_location.get((module, attr))
                    if slot is None:
                        self._c004(fi, contract,
                                   f"writes unregistered global "
                                   f"'{eff.detail}' (via {origin})")
                    elif slot.name not in allowed_writes:
                        self._c004(fi, contract,
                                   f"writes slot '{slot.name}' "
                                   f"[{slot.classification}] without "
                                   f"declaring it in owns=/merges= "
                                   f"(via {origin})")
                elif eff.kind == "reads-global":
                    module, attr = eff.detail.split(":", 1)
                    slot = self.slots_by_location.get((module, attr))
                    if slot is not None \
                            and slot.classification == NEEDS_MERGE \
                            and slot.name not in allowed_writes:
                        self._c004(fi, contract,
                                   f"records into shared slot '{slot.name}' "
                                   f"[needs-merge-on-join] without declaring "
                                   f"merges=('{slot.name}',) (via {origin})")
                elif eff.kind == "rng-draw" and (
                        eff.detail == "np.random"
                        or (":" in eff.detail
                            and not eff.detail.startswith("arg:"))):
                    self._c004(fi, contract,
                               f"draws from shared RNG state "
                               f"'{eff.detail}' (via {origin})")
                elif eff.kind == "mutates-arg":
                    if eff.detail not in ("self", "cls") \
                            and eff.detail in fi.params \
                            and eff.detail not in contract.mutates:
                        self._c004(fi, contract,
                                   f"mutates parameter '{eff.detail}' "
                                   f"without declaring it in mutates= "
                                   f"(via {origin})")
                elif eff.kind == "io" and not contract.io:
                    has_undeclared_io = True
                    io_origin = io_origin or origin
            if has_undeclared_io:
                self._emit(
                    "C006", "warning", "undeclared-io",
                    f"shard-safe entry {contract.name} transitively performs "
                    f"I/O (via {io_origin}) but does not declare io=True",
                    fi, fi.lineno)

    def _c004(self, fi: FunctionInfo, contract: ShardContract,
              what: str) -> None:
        self._emit(
            "C004", "error", "shard-contract-violation",
            f"shard-safe entry {contract.name} {what}",
            fi, fi.lineno)


def analyze_effects(root: Optional[Path] = None, package: str = "repro",
                    select: Optional[Sequence[str]] = None,
                    ignore: Optional[Sequence[str]] = None) -> EffectReport:
    """Run the full effect analysis and return the report."""
    analysis = _Analysis(Path(root) if root else DEFAULT_ROOT, package)
    analysis.run()
    findings = filter_findings(analysis.findings, select=select, ignore=ignore)
    return EffectReport(
        findings=findings,
        modules=len(analysis.graph.modules),
        functions=len(analysis.graph.functions),
        edges=sum(len(s) for s in analysis.sites.values()),
        sccs=analysis.scc_count,
        entries=analysis.entries,
        suppressed=analysis.suppressed,
    )


def effects_of(full_name: str, root: Optional[Path] = None,
               package: str = "repro") -> List[Tuple[str, str]]:
    """Inferred transitive effects of one function, rendered.

    Returns ``(effect, origin)`` pairs; raises ``KeyError`` for an
    unknown function.  Mostly a debugging/inspection helper behind
    ``repro effects --entry``.
    """
    analysis = _Analysis(Path(root) if root else DEFAULT_ROOT, package)
    analysis.run()
    if full_name not in analysis.effects:
        raise KeyError(full_name)
    return sorted((eff.render(), origin)
                  for eff, origin in analysis.effects[full_name].items())
