"""AST call graph over the ``repro`` package.

This is the substrate of the interprocedural effect analysis
(:mod:`repro.analysis.effects.analyzer`): a whole-package scan that
produces, per module, the import table, the module-global inventory
(with a mutability classification), every top-level function and class
method, and per function the set of resolvable call edges.

Resolution strategy (deliberately conservative):

* direct calls to names imported from package modules resolve exactly;
* constructor calls resolve to ``Cls.__init__`` when defined;
* ``self.meth()`` resolves within the enclosing class first, then by
  name across the package (the superclass may define it);
* other attribute calls (``obj.meth(...)``) resolve by *class-hierarchy
  analysis by name*: an edge to every package class method with that
  name.  Methods nobody defines (``list.append``, ``dict.get``, numpy
  ufuncs) resolve to nothing and are treated as opaque/pure — their
  effects, where relevant (RNG draws, file writes, global mutation),
  are modelled directly by the analyzer's local-effect extraction.

Nested functions fold into their enclosing top-level function: a
decorator factory's closure is analysed as part of the factory, which
matches how its effects escape.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "FunctionInfo", "ClassInfo", "ModuleInfo", "PackageGraph", "CallSite",
    "GLOBAL_MUTABLE", "GLOBAL_INSTANCE", "GLOBAL_CONSTANT",
    "GLOBAL_THREADLOCAL", "attr_chain", "scan_package", "strongly_connected",
]

# Shares the lint suppression syntax: ``# repro: noqa[C001]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Z0-9, ]+)\]")

# ---- module-global mutability classification ------------------------- #
GLOBAL_MUTABLE = "mutable-container"      # dict/list/set literal or ctor
GLOBAL_INSTANCE = "instance"              # arbitrary object (singletons)
GLOBAL_CONSTANT = "constant"              # scalars, tuples, regexes, locks
GLOBAL_THREADLOCAL = "thread-local"       # threading.local()

_CONSTANT_CTORS = {
    "frozenset", "tuple", "namedtuple", "TypeVar", "compile",
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
    "Event", "Barrier",
}
_MUTABLE_CTORS = {
    "dict", "list", "set", "defaultdict", "OrderedDict", "deque", "Counter",
}

#: Builtin container-protocol method names never resolved by CHA —
#: calling them on an arbitrary receiver is overwhelmingly a plain
#: dict/list/set operation, not a package method.
_CHA_OPAQUE_METHODS = {
    "get", "pop", "clear", "update", "setdefault", "popitem",
    "append", "extend", "insert", "remove", "sort", "reverse",
    "items", "keys", "values", "copy", "add", "discard",
}


def attr_chain(node: ast.AST) -> List[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``super().m`` -> ``["super()", "m"]``.

    Returns ``[]`` for chains rooted in anything other than a plain name
    (subscripts, call results, literals).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    if isinstance(node, ast.Call):
        inner = attr_chain(node.func)
        if inner == ["super"]:
            parts.append("super()")
            return list(reversed(parts))
    return []


@dataclass
class FunctionInfo:
    """One analysable function: a module function or a class method."""

    module: str
    qualname: str                 # "fn" or "Cls.fn"
    node: ast.AST                 # FunctionDef / AsyncFunctionDef
    cls: Optional[str]
    params: Tuple[str, ...]
    lineno: int

    @property
    def full_name(self) -> str:
        return f"{self.module}.{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    module: str
    name: str
    bases: Tuple[str, ...]        # base-class *names* (last chain part)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    name: str
    path: Path
    tree: ast.Module
    is_package: bool = False
    imports: Dict[str, str] = field(default_factory=dict)      # alias -> module
    from_names: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    globals: Dict[str, str] = field(default_factory=dict)      # name -> kind
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    noqa: Dict[int, Set[str]] = field(default_factory=dict)
    _raw_from: List[Tuple[str, str, str]] = field(default_factory=list)


@dataclass
class CallSite:
    """A resolved call edge with its argument aliasing map.

    ``arg_map`` maps *callee* parameter names to *caller* parameter
    names, recorded only when the argument expression is a bare name
    that is one of the caller's own parameters — the one level of alias
    tracking needed to propagate ``mutates-arg`` soundly without a
    full points-to analysis.
    """

    callee: str                   # full name "repro.x.y.fn"
    arg_map: Dict[str, str]
    lineno: int


class PackageGraph:
    """Scanned package: modules, functions, and the method-name index."""

    def __init__(self, package: str, root: Path):
        self.package = package
        self.root = root
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self._methods_by_name: Dict[str, List[FunctionInfo]] = {}

    def finalize(self) -> None:
        """Resolve deferred from-imports and build the method index."""
        for mi in self.modules.values():
            for target_module, orig, asname in mi._raw_from:
                candidate = f"{target_module}.{orig}" if target_module else orig
                if candidate in self.modules:
                    mi.imports[asname] = candidate
                else:
                    mi.from_names[asname] = (target_module, orig)
            for qualname, fi in mi.functions.items():
                self.functions[fi.full_name] = fi
            for ci in mi.classes.values():
                for meth in ci.methods.values():
                    self._methods_by_name.setdefault(meth.name, []).append(meth)

    def methods_named(self, name: str) -> List[FunctionInfo]:
        return self._methods_by_name.get(name, [])

    def module_function(self, module: str, name: str) -> Optional[FunctionInfo]:
        mi = self.modules.get(module)
        if mi is None:
            return None
        return mi.functions.get(name)

    def class_in(self, module: str, name: str) -> Optional[ClassInfo]:
        mi = self.modules.get(module)
        if mi is None:
            return None
        return mi.classes.get(name)


def _module_name_for(path: Path, root: Path, package: str) -> Tuple[str, bool]:
    rel = path.relative_to(root)
    parts = list(rel.parts)
    is_package = parts[-1] == "__init__.py"
    if is_package:
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][:-3]
    return ".".join([package] + parts), is_package


def _resolve_relative(mi_name: str, is_package: bool, node: ast.ImportFrom) -> str:
    if node.level == 0:
        return node.module or ""
    parts = mi_name.split(".")
    # For a plain module, level 1 is its containing package; for a
    # package (__init__), level 1 is the package itself.
    drop = node.level if not is_package else node.level - 1
    base = parts[: len(parts) - drop] if drop else parts
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def _classify_global(value: Optional[ast.expr]) -> str:
    if value is None:
        return GLOBAL_CONSTANT  # bare annotation, no binding yet
    if isinstance(value, (ast.Dict, ast.List, ast.Set,
                          ast.ListComp, ast.DictComp, ast.SetComp)):
        return GLOBAL_MUTABLE
    if isinstance(value, ast.Call):
        chain = attr_chain(value.func)
        last = chain[-1] if chain else ""
        if last == "local":
            return GLOBAL_THREADLOCAL
        if last in _CONSTANT_CTORS:
            return GLOBAL_CONSTANT
        if last in _MUTABLE_CTORS:
            return GLOBAL_MUTABLE
        return GLOBAL_INSTANCE
    if isinstance(value, ast.Name):
        return GLOBAL_INSTANCE
    return GLOBAL_CONSTANT


def _params_of(node: ast.AST) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def _top_level_statements(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Module body plus statements nested in top-level ``if``/``try``."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, ast.If):
            yield from _top_level_statements(stmt.body)
            yield from _top_level_statements(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            yield from _top_level_statements(stmt.body)
            for handler in stmt.handlers:
                yield from _top_level_statements(handler.body)
            yield from _top_level_statements(stmt.orelse)
            yield from _top_level_statements(stmt.finalbody)


def _scan_module(path: Path, root: Path, package: str) -> ModuleInfo:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    name, is_package = _module_name_for(path, root, package)
    mi = ModuleInfo(name=name, path=path, tree=tree, is_package=is_package)

    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match:
            codes = {code.strip() for code in match.group(1).split(",")}
            mi.noqa[lineno] = {c for c in codes if c}

    for stmt in _top_level_statements(tree.body):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                # `import a.b.c` binds `a`; `import a.b.c as m` binds the
                # full dotted module to `m`.
                if alias.asname is None:
                    mi.imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
                else:
                    mi.imports[alias.asname] = alias.name
        elif isinstance(stmt, ast.ImportFrom):
            target = _resolve_relative(name, is_package, stmt)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                mi._raw_from.append((target, alias.name, bound))
        elif isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    mi.globals[tgt.id] = _classify_global(stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                mi.globals[stmt.target.id] = _classify_global(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fi = FunctionInfo(module=name, qualname=stmt.name, node=stmt,
                              cls=None, params=_params_of(stmt),
                              lineno=stmt.lineno)
            mi.functions[fi.qualname] = fi
        elif isinstance(stmt, ast.ClassDef):
            bases = tuple(chain[-1] for chain in
                          (attr_chain(b) for b in stmt.bases) if chain)
            ci = ClassInfo(module=name, name=stmt.name, bases=bases)
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fi = FunctionInfo(module=name,
                                      qualname=f"{stmt.name}.{sub.name}",
                                      node=sub, cls=stmt.name,
                                      params=_params_of(sub),
                                      lineno=sub.lineno)
                    ci.methods[sub.name] = fi
                    mi.functions[fi.qualname] = fi
            mi.classes[stmt.name] = ci
    return mi


def scan_package(root: Path, package: str = "repro") -> PackageGraph:
    """Parse every ``.py`` under ``root`` into a :class:`PackageGraph`."""
    graph = PackageGraph(package=package, root=root)
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        mi = _scan_module(path, root, package)
        graph.modules[mi.name] = mi
    graph.finalize()
    return graph


# --------------------------------------------------------------------- #
# Call resolution
# --------------------------------------------------------------------- #
class CallResolver:
    """Resolves ``ast.Call`` nodes in one function to package edges."""

    def __init__(self, graph: PackageGraph, mi: ModuleInfo, fi: FunctionInfo):
        self.graph = graph
        self.mi = mi
        self.fi = fi

    def resolve(self, call: ast.Call) -> List[FunctionInfo]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id)
        chain = attr_chain(func)
        if not chain:
            return []
        if chain[0] == "self" and len(chain) == 2 and self.fi.cls:
            return self._resolve_self_method(chain[1])
        if chain[0] == "super()" and len(chain) == 2:
            return self._resolve_super_method(chain[1])
        return self._resolve_attribute(chain)

    # -- helpers ------------------------------------------------------- #
    def _resolve_name(self, name: str) -> List[FunctionInfo]:
        # Same-module function or class?
        fi = self.mi.functions.get(name)
        if fi is not None:
            return [fi]
        if name in self.mi.classes:
            return self._constructor(self.mi.name, name)
        # Imported from a package module?
        if name in self.mi.from_names:
            target_module, orig = self.mi.from_names[name]
            if target_module in self.graph.modules:
                fn = self.graph.module_function(target_module, orig)
                if fn is not None:
                    return [fn]
                if self.graph.class_in(target_module, orig):
                    return self._constructor(target_module, orig)
        return []

    def _constructor(self, module: str, cls: str) -> List[FunctionInfo]:
        ci = self.graph.class_in(module, cls)
        if ci and "__init__" in ci.methods:
            return [ci.methods["__init__"]]
        # Inherited __init__ within the package, by base-class name.
        if ci:
            for base in ci.bases:
                for mi2 in self.graph.modules.values():
                    base_ci = mi2.classes.get(base)
                    if base_ci and "__init__" in base_ci.methods:
                        return [base_ci.methods["__init__"]]
        return []

    def _resolve_self_method(self, name: str) -> List[FunctionInfo]:
        ci = self.mi.classes.get(self.fi.cls or "")
        if ci and name in ci.methods:
            return [ci.methods[name]]
        return self.graph.methods_named(name)

    def _find_class(self, name: str) -> Optional["ClassInfo"]:
        ci = self.mi.classes.get(name)
        if ci is not None:
            return ci
        if name in self.mi.from_names:
            target_module, orig = self.mi.from_names[name]
            ci = self.graph.class_in(target_module, orig)
            if ci is not None:
                return ci
        for mi2 in self.graph.modules.values():
            if name in mi2.classes:
                return mi2.classes[name]
        return None

    def _resolve_super_method(self, name: str) -> List[FunctionInfo]:
        # Walk the declared base-class chain — CHA-by-name over every
        # same-named method would drown `super().__init__()` in noise.
        ci = self.mi.classes.get(self.fi.cls or "")
        queue = list(ci.bases) if ci else []
        seen: Set[str] = set()
        result: List[FunctionInfo] = []
        while queue:
            base = queue.pop(0)
            if base in seen:
                continue
            seen.add(base)
            base_ci = self._find_class(base)
            if base_ci is None:
                continue
            if name in base_ci.methods:
                result.append(base_ci.methods[name])
                continue
            queue.extend(base_ci.bases)
        return result

    def _resolve_attribute(self, chain: List[str]) -> List[FunctionInfo]:
        head = chain[0]
        # Module alias: repro submodule function (possibly via a nested
        # attribute path such as `obs.metrics.counter`).
        module = self.mi.imports.get(head)
        if module is not None and module.startswith(self.graph.package):
            mod, idx = module, 1
            while idx < len(chain) - 1 and f"{mod}.{chain[idx]}" in self.graph.modules:
                mod = f"{mod}.{chain[idx]}"
                idx += 1
            if idx == len(chain) - 1:
                fn = self.graph.module_function(mod, chain[idx])
                if fn is not None:
                    return [fn]
                if self.graph.class_in(mod, chain[idx]):
                    return self._constructor(mod, chain[idx])
            if idx == len(chain) - 2:
                # module.Class.method / module.Class() attribute forms
                ci = self.graph.class_in(mod, chain[idx])
                if ci and chain[idx + 1] in ci.methods:
                    return [ci.methods[chain[idx + 1]]]
            return []
        # Imported class: Cls.method(...)
        if head in self.mi.from_names and len(chain) == 2:
            target_module, orig = self.mi.from_names[head]
            ci = self.graph.class_in(target_module, orig)
            if ci and chain[1] in ci.methods:
                return [ci.methods[chain[1]]]
        if head in self.mi.classes and len(chain) == 2:
            ci = self.mi.classes[head]
            if chain[1] in ci.methods:
                return [ci.methods[chain[1]]]
        # CHA by name across package classes.  Dunders are excluded:
        # explicit `x.__init__(...)` style calls are rare and the name
        # collides with every class in the package.  Builtin container
        # protocol names are excluded too — `d.get(...)` on a plain dict
        # must not resolve to every package class that happens to
        # subclass dict/list (e.g. the race sanitizer's recorders).
        last = chain[-1]
        if last.startswith("__") and last.endswith("__"):
            return []
        if last in _CHA_OPAQUE_METHODS:
            return []
        return self.graph.methods_named(last)


def call_sites(graph: PackageGraph, fi: FunctionInfo) -> List[CallSite]:
    """Resolved call edges for one function (nested defs folded in)."""
    mi = graph.modules[fi.module]
    resolver = CallResolver(graph, mi, fi)
    decorator_calls = set()
    for node in ast.walk(fi.node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for dec in node.decorator_list:
                for sub in ast.walk(dec):
                    if isinstance(sub, ast.Call):
                        decorator_calls.add(id(sub))
    sites: List[CallSite] = []
    caller_params = set(fi.params)
    for node in ast.walk(fi.node):
        if not isinstance(node, ast.Call) or id(node) in decorator_calls:
            continue
        callees = resolver.resolve(node)
        if not callees:
            continue
        receiver = attr_chain(node.func)
        recv_name = receiver[0] if len(receiver) == 2 else None
        for callee in callees:
            arg_map: Dict[str, str] = {}
            params = list(callee.params)
            offset = 0
            if callee.cls and params and params[0] in ("self", "cls"):
                if recv_name and recv_name in caller_params:
                    arg_map[params[0]] = recv_name
                elif recv_name == "self" and "self" in caller_params:
                    arg_map[params[0]] = "self"
                offset = 1
            elif callee.cls and params and callee.name == "__init__":
                offset = 1  # constructor call: args start at params[1]
            for pos, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred):
                    break
                pidx = pos + offset
                if pidx < len(params) and isinstance(arg, ast.Name) \
                        and arg.id in caller_params:
                    arg_map[params[pidx]] = arg.id
            for kw in node.keywords:
                if kw.arg and isinstance(kw.value, ast.Name) \
                        and kw.value.id in caller_params:
                    arg_map[kw.arg] = kw.value.id
            sites.append(CallSite(callee=callee.full_name, arg_map=arg_map,
                                  lineno=node.lineno))
    return sites


# --------------------------------------------------------------------- #
# SCC condensation (iterative Tarjan)
# --------------------------------------------------------------------- #
def strongly_connected(nodes: Sequence[str],
                       edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan SCCs, emitted callees-first (reverse topological order).

    With edges pointing caller -> callee, each emitted component only
    depends on previously emitted ones, so a single pass over the
    result gives the bottom-up fixpoint order.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[List[str]] = []
    counter = [0]

    for start in nodes:
        if start in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [(start, iter(sorted(edges.get(start, ()))))]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result
