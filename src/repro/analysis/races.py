"""Dynamic race sanitizer over the global-state manifest.

The static effect analysis (:mod:`repro.analysis.effects`) proves what
library code *may* touch; this module checks what actually happens when
hot paths run on real threads.  It wraps manifest slots
(:data:`repro.concurrency.MANIFEST`) with access recorders — dicts and
lists get recording subclasses, singleton instances a delegating proxy
— and drives a set of scenarios on a thread pool with barrier-forced
interleavings, so every round releases all workers into the wrapped
state at once.  Afterwards the recorded ``(slot, thread, kind,
guard-held, stack)`` tuples are checked against each slot's
classification:

====  ========  ====================================================
code  severity  meaning
====  ========  ====================================================
D001  error     unsynchronized write-write: two threads wrote a
                synchronized/unsafe slot without its guard held
D002  error     unsynchronized read-write: a guardless write raced
                concurrent readers of a synchronized slot
D003  error     write to an ``immutable``-classified slot after
                import time
D004  error     scenario assertion failed (lost update, cross-thread
                leak, nondeterministic result)
====  ========  ====================================================

The sanitizer exists precisely because the static analysis cannot see
dynamic attribute stores (``setattr(module, ...)``) or prove that a
guard is *actually held* at runtime — the two blind spots meet here.

CLI: ``repro race-check [--threads N --rounds N --scenario NAME]``.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..concurrency import (
    IMMUTABLE, NEEDS_MERGE, SYNCHRONIZED, THREAD_LOCAL, UNSAFE,
    GlobalSlot, manifest_by_name, resolve_guard, resolve_slot,
)
from .findings import Finding, count_findings, filter_findings, \
    format_findings_text

__all__ = [
    "AccessRecord", "AccessLog", "Sanitizer", "Scenario", "RaceReport",
    "race_check", "default_scenarios", "scenario_names",
]

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class AccessRecord:
    slot: str
    thread: int
    kind: str             # READ / WRITE
    guard_held: bool
    where: str            # innermost repro frame "file:line (fn)"


def _caller_digest() -> str:
    """Innermost non-sanitizer ``repro`` frame of the current stack."""
    for frame in reversed(traceback.extract_stack(limit=12)):
        fname = frame.filename.replace("\\", "/")
        if "/repro/" in fname and not fname.endswith("analysis/races.py"):
            short = fname.rsplit("/repro/", 1)[-1]
            return f"repro/{short}:{frame.lineno} ({frame.name})"
    return "<outside repro>"


class AccessLog:
    """Thread-safe append-only access log shared by all recorders."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[AccessRecord] = []

    def record(self, slot: str, kind: str, guard) -> None:
        rec = AccessRecord(
            slot=slot, thread=threading.get_ident(), kind=kind,
            guard_held=bool(guard.locked()) if guard is not None else False,
            where=_caller_digest(),
        )
        with self._lock:
            self._records.append(rec)

    def records(self) -> List[AccessRecord]:
        with self._lock:
            return list(self._records)


class _RecordingDict(dict):
    """Dict subclass recording reads/writes against a slot."""

    def __init__(self, base: dict, slot: str, log: AccessLog, guard):
        super().__init__(base)
        self._slot = slot
        self._log = log
        self._guard = guard

    def __getitem__(self, key):
        self._log.record(self._slot, READ, self._guard)
        return super().__getitem__(key)

    def get(self, key, default=None):
        self._log.record(self._slot, READ, self._guard)
        return super().get(key, default)

    def __contains__(self, key):
        self._log.record(self._slot, READ, self._guard)
        return super().__contains__(key)

    def __setitem__(self, key, value):
        self._log.record(self._slot, WRITE, self._guard)
        super().__setitem__(key, value)

    def setdefault(self, key, default=None):
        self._log.record(self._slot, WRITE, self._guard)
        return super().setdefault(key, default)

    def update(self, *args, **kwargs):
        self._log.record(self._slot, WRITE, self._guard)
        super().update(*args, **kwargs)

    def pop(self, *args):
        self._log.record(self._slot, WRITE, self._guard)
        return super().pop(*args)

    def clear(self):
        self._log.record(self._slot, WRITE, self._guard)
        super().clear()


class _RecordingList(list):
    """List subclass recording reads/writes against a slot."""

    def __init__(self, base: list, slot: str, log: AccessLog, guard):
        super().__init__(base)
        self._slot = slot
        self._log = log
        self._guard = guard

    def __iter__(self):
        self._log.record(self._slot, READ, self._guard)
        return super().__iter__()

    def __getitem__(self, index):
        self._log.record(self._slot, READ, self._guard)
        return super().__getitem__(index)

    def append(self, item):
        self._log.record(self._slot, WRITE, self._guard)
        super().append(item)

    def extend(self, items):
        self._log.record(self._slot, WRITE, self._guard)
        super().extend(items)

    def remove(self, item):
        self._log.record(self._slot, WRITE, self._guard)
        super().remove(item)

    def insert(self, index, item):
        self._log.record(self._slot, WRITE, self._guard)
        super().insert(index, item)

    def pop(self, *args):
        self._log.record(self._slot, WRITE, self._guard)
        return super().pop(*args)

    def clear(self):
        self._log.record(self._slot, WRITE, self._guard)
        super().clear()


class _RecordingProxy:
    """Attribute-delegating proxy for singleton slot values.

    Records every attribute fetch as a read — method calls on the
    underlying object (``registry.counter(...)``) go through here.
    Rebinding the module global replaces the proxy itself, which the
    sanitizer detects at uninstall time.
    """

    __slots__ = ("_races_target", "_races_slot", "_races_log", "_races_guard")

    def __init__(self, target, slot: str, log: AccessLog, guard):
        object.__setattr__(self, "_races_target", target)
        object.__setattr__(self, "_races_slot", slot)
        object.__setattr__(self, "_races_log", log)
        object.__setattr__(self, "_races_guard", guard)

    def __getattr__(self, name):
        self._races_log.record(self._races_slot, READ, self._races_guard)
        return getattr(self._races_target, name)

    def __setattr__(self, name, value):
        self._races_log.record(self._races_slot, WRITE, self._races_guard)
        setattr(self._races_target, name, value)

    def __bool__(self):
        self._races_log.record(self._races_slot, READ, self._races_guard)
        return bool(self._races_target)


@dataclass
class _WatchedCell:
    slot: GlobalSlot
    module: object
    original: object
    wrapper: object


class Sanitizer:
    """Installs recorders over manifest slots; context-manager style."""

    def __init__(self) -> None:
        self.log = AccessLog()
        self._cells: List[_WatchedCell] = []
        self._adhoc: Dict[str, str] = {}   # ad-hoc cell name -> classification

    # -- installation -------------------------------------------------- #
    def watch(self, slot_name: str) -> None:
        """Wrap one manifest slot's current value with a recorder."""
        import importlib
        slot = manifest_by_name()[slot_name]
        if "." in slot.attr or slot.classification == THREAD_LOCAL:
            return  # class-attr patch points / thread-locals: not wrappable
        module = importlib.import_module(slot.module)
        original = getattr(module, slot.attr)
        guard = resolve_guard(slot)
        if isinstance(original, dict):
            wrapper: object = _RecordingDict(original, slot.name, self.log, guard)
        elif isinstance(original, list):
            wrapper = _RecordingList(original, slot.name, self.log, guard)
        else:
            wrapper = _RecordingProxy(original, slot.name, self.log, guard)
        setattr(module, slot.attr, wrapper)
        self._cells.append(_WatchedCell(slot=slot, module=module,
                                        original=original, wrapper=wrapper))

    def watch_value(self, name: str, value, classification: str,
                    guard=None):
        """Register an ad-hoc recorded cell (tests / positive controls).

        Returns the wrapped value; the caller shares it between threads.
        """
        if isinstance(value, dict):
            wrapper: object = _RecordingDict(value, name, self.log, guard)
        elif isinstance(value, list):
            wrapper = _RecordingList(value, name, self.log, guard)
        else:
            wrapper = _RecordingProxy(value, name, self.log, guard)
        self._adhoc[name] = classification
        return wrapper

    def uninstall(self) -> None:
        for cell in reversed(self._cells):
            current = getattr(cell.module, cell.slot.attr, None)
            if current is cell.wrapper:
                # Mutations made through a dict/list wrapper must flow
                # back into the original object before the swap.
                if isinstance(cell.wrapper, dict):
                    cell.original.clear()
                    cell.original.update(dict.items(cell.wrapper))
                elif isinstance(cell.wrapper, list):
                    cell.original[:] = list.__iter__(cell.wrapper)
                setattr(cell.module, cell.slot.attr, cell.original)
            # else: the slot was rebound mid-run (an installer replaced
            # the wrapper) — leave the new value in place.
        self._cells.clear()

    def __enter__(self) -> "Sanitizer":
        return self

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # -- conflict analysis --------------------------------------------- #
    def classification_of(self, slot_name: str) -> str:
        adhoc = self._adhoc.get(slot_name)
        if adhoc is not None:
            return adhoc
        return manifest_by_name()[slot_name].classification

    def findings(self) -> List[Finding]:
        by_slot: Dict[str, List[AccessRecord]] = {}
        for rec in self.log.records():
            by_slot.setdefault(rec.slot, []).append(rec)
        out: List[Finding] = []
        for slot_name, records in sorted(by_slot.items()):
            classification = self.classification_of(slot_name)
            threads = {r.thread for r in records}
            writes = [r for r in records if r.kind == WRITE]
            reads = [r for r in records if r.kind == READ]
            if classification == IMMUTABLE and writes:
                out.append(Finding(
                    kind="post-init-immutable-write", severity="error",
                    code="D003",
                    message=f"slot '{slot_name}' is classified immutable "
                            f"but was written at runtime "
                            f"(first write at {writes[0].where})",
                    where=writes[0].where))
                continue
            if len(threads) < 2:
                continue  # no concurrency observed, nothing to judge
            if classification == SYNCHRONIZED:
                unguarded_writes = [w for w in writes if not w.guard_held]
                writer_threads = {w.thread for w in unguarded_writes}
                if len(writer_threads) >= 2:
                    a, b = sorted(writer_threads)[:2]
                    out.append(Finding(
                        kind="unsynchronized-write-write", severity="error",
                        code="D001",
                        message=f"slot '{slot_name}': threads {a} and {b} "
                                f"both wrote without holding guard "
                                f"'{manifest_by_name().get(slot_name) and manifest_by_name()[slot_name].guard or '?'}' "
                                f"(e.g. {unguarded_writes[0].where})",
                        where=unguarded_writes[0].where))
                elif unguarded_writes and reads:
                    reader_threads = {r.thread for r in reads} \
                        - writer_threads
                    if reader_threads:
                        out.append(Finding(
                            kind="unsynchronized-read-write",
                            severity="error", code="D002",
                            message=f"slot '{slot_name}': unguarded write "
                                    f"at {unguarded_writes[0].where} raced "
                                    f"{len(reader_threads)} reader "
                                    f"thread(s)",
                            where=unguarded_writes[0].where))
            elif classification in (UNSAFE, NEEDS_MERGE):
                writer_threads = {w.thread for w in writes}
                if len(writer_threads) >= 2:
                    out.append(Finding(
                        kind="unsynchronized-write-write", severity="error",
                        code="D001",
                        message=f"slot '{slot_name}' "
                                f"[{classification}] was written from "
                                f"{len(writer_threads)} threads "
                                f"(e.g. {writes[0].where}) — shards must "
                                f"not touch coordinator-owned state",
                        where=writes[0].where))
                elif writer_threads and \
                        ({r.thread for r in reads} - writer_threads):
                    out.append(Finding(
                        kind="unsynchronized-read-write", severity="error",
                        code="D002",
                        message=f"slot '{slot_name}' [{classification}] "
                                f"written by one thread while others read "
                                f"(write at {writes[0].where})",
                        where=writes[0].where))
        return out


# ===================================================================== #
# Scenarios
# ===================================================================== #
@dataclass
class Scenario:
    """One barrier-synchronised multi-thread workload.

    ``body(ctx, thread_index, round_index)`` runs in each worker; any
    returned string is a failed assertion (finding D004).  ``setup``
    runs once before the threads start and returns the shared ``ctx``;
    ``slots`` are watched for the duration.
    """

    name: str
    slots: Tuple[str, ...]
    body: Callable[[object, int, int], Optional[str]]
    setup: Callable[[Sanitizer], object] = lambda sanitizer: None
    teardown: Callable[[object], None] = lambda ctx: None
    doc: str = ""


def _run_threads(scenario: Scenario, sanitizer: Sanitizer, ctx: object,
                 threads: int, rounds: int) -> List[str]:
    barrier = threading.Barrier(threads)
    failures: List[str] = []
    fail_lock = threading.Lock()

    def worker(index: int) -> None:
        for round_index in range(rounds):
            try:
                barrier.wait(timeout=30)
                result = scenario.body(ctx, index, round_index)
            except Exception as exc:  # noqa: BLE001 - surfaced as D004
                result = f"thread {index} round {round_index}: {exc!r}"
            if result:
                with fail_lock:
                    failures.append(f"[{scenario.name}] {result}")

    pool = [threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(threads)]
    for t in pool:
        t.start()
    for t in pool:
        t.join(timeout=60)
    return failures


# -- concrete scenario bodies ----------------------------------------- #
def _attribution_scenario() -> Scenario:
    from functools import partial

    def body(ctx, index, round_index):
        from ..obs.attribution import clear_name_cache, op_name_from_backward
        for _ in range(25):
            # partial objects have no __code__, so each is a fresh
            # cache key — every call exercises the insert path.
            name = op_name_from_backward(partial(lambda: None))
            if name != "op":
                return f"unexpected derived name {name!r}"
        if index == 0 and round_index % 2:
            clear_name_cache()
        return None

    return Scenario(
        name="attribution-names", slots=("obs.attribution.name_cache",),
        body=body,
        doc="hammers the op-name cache insert path from all threads "
            "while one thread periodically clears it")


def _metrics_scenario() -> Scenario:
    def setup(sanitizer):
        from ..obs import metrics
        registry = metrics.Registry()
        previous = metrics.set_registry(registry)
        return {"registry": registry, "previous": previous,
                "per_thread": 200}

    def body(ctx, index, round_index):
        from ..obs import metrics
        counter = metrics.counter("races.test_total")
        for _ in range(ctx["per_thread"]):
            counter.inc()
        metrics.histogram("races.test_seconds").observe(0.001 * index)
        return None

    def teardown(ctx):
        from ..obs import metrics
        metrics.set_registry(ctx["previous"])

    return Scenario(
        name="metrics-updates", slots=("obs.metrics.registry",),
        body=body, setup=setup, teardown=teardown,
        doc="concurrent counter/histogram updates through the global "
            "registry (reads of the slot, locked instrument updates)")


def _hooks_scenario() -> Scenario:
    def setup(sanitizer):
        from ..nn.module import Module

        class _Leaf(Module):
            def forward(self, x):
                return x

        return {"module": _Leaf()}

    def body(ctx, index, round_index):
        from ..nn.module import register_forward_hooks
        seen: List[int] = []
        handle = register_forward_hooks(pre=lambda m: seen.append(1))
        try:
            for _ in range(10):
                ctx["module"](index)
        finally:
            handle.remove()
        if not seen:
            return "pre-hook never fired while registered"
        return None

    return Scenario(
        name="forward-hooks", slots=("nn.module.forward_hooks",),
        body=body, setup=setup,
        doc="registers/removes global forward hooks from all threads "
            "while forwards run (locked mutation, snapshot iteration)")


def _grad_mode_scenario() -> Scenario:
    def body(ctx, index, round_index):
        from ..nn.tensor import is_grad_enabled, no_grad
        if not is_grad_enabled():
            return "grad mode not enabled at round start"
        with no_grad():
            for _ in range(50):
                if is_grad_enabled():
                    return ("grad mode re-enabled inside no_grad() — "
                            "another thread's state leaked in")
        if not is_grad_enabled():
            return "grad mode not restored after no_grad()"
        return None

    return Scenario(
        name="grad-mode-isolation", slots=(),
        body=body,
        doc="every thread toggles no_grad() concurrently; the flag must "
            "be perfectly thread-local (regression pin for the "
            "process-global grad-mode defect)")


def _kernel_toggle_scenario() -> Scenario:
    def body(ctx, index, round_index):
        from ..nn.kernels import registry as kr
        if kr.kernel_active("softmax_xent"):
            return "kernels active before use_kernels()"
        with kr.use_kernels():
            if not kr.kernel_mode():
                return "kernel mode not active inside use_kernels()"
        if kr.kernel_active("softmax_xent"):
            return "kernels still active after use_kernels() exited"
        return None

    return Scenario(
        name="kernel-toggle",
        slots=("nn.kernels.table", "nn.kernels.alloc_latch"),
        body=body,
        doc="toggles the fused-kernel context on every thread; the "
            "activation set is thread-local, the allocator latch is "
            "lock-guarded")


def _sig_cache_scenario() -> Scenario:
    def setup(sanitizer):
        import numpy as _np
        from ..nn.layers import Linear
        rng = _np.random.default_rng(0)
        return {"module": Linear(4, 2, rng), "x": _np.zeros((3, 4))}

    def body(ctx, index, round_index):
        from ..analysis.shapes.spec import _bind_arguments
        module = ctx["module"]
        for _ in range(20):
            bound = _bind_arguments(type(module).forward, module,
                                    (ctx["x"],), {})
            if bound and "self" not in bound:
                return "bound arguments lost the self parameter"
        return None

    return Scenario(
        name="shape-sig-cache", slots=("analysis.shapes.sig_cache",),
        body=body, setup=setup,
        doc="concurrent forward-signature binding through the locked "
            "memo (regression pin for the unguarded cache)")


def _topk_scenario() -> Scenario:
    def setup(sanitizer):
        rng = np.random.default_rng(7)
        a = rng.normal(size=(64, 16))
        b = rng.normal(size=(96, 16))
        from ..align.similarity import chunked_cosine_topk
        idx, scores = chunked_cosine_topk(a, b, k=5)
        return {"a": a, "b": b, "idx": idx, "scores": scores}

    def body(ctx, index, round_index):
        from ..align.similarity import chunked_cosine_topk
        idx, scores = chunked_cosine_topk(ctx["a"], ctx["b"], k=5,
                                          memory_budget_bytes=1 << 14)
        if not np.array_equal(idx, ctx["idx"]):
            return "top-k indices diverged across threads"
        if not np.allclose(scores, ctx["scores"]):
            return "top-k scores diverged across threads"
        return None

    return Scenario(
        name="topk-shards", slots=("obs.metrics.registry",),
        body=body, setup=setup,
        doc="runs the chunked cosine top-k on every thread and checks "
            "bitwise-stable results under concurrency")


def _shard_merge_scenario() -> Scenario:
    def setup(sanitizer):
        from ..obs import metrics
        from ..obs.shards import ObsFork
        parent = metrics.Registry()
        previous = metrics.set_registry(parent)
        # The fork installs its router via the sanctioned set_registry
        # installer; the sanitizer then watches the router, so worker
        # metric calls record as slot *reads* (the writes land on the
        # child registries, which are shard-private by construction).
        fork = ObsFork(16, label="race-check")
        fork.__enter__()
        return {"parent": parent, "previous": previous, "fork": fork,
                "per_thread": 50, "last_total": 0.0}

    def body(ctx, index, round_index):
        from ..obs import metrics
        fork = ctx["fork"]
        shard = fork.contexts[index % len(fork.contexts)]
        with shard:
            counter = metrics.counter("races.shard_total")
            for _ in range(ctx["per_thread"]):
                counter.inc()
        if index == 0:
            # Peek-merge into a scratch registry while the other
            # workers keep writing their children: merge_from locks
            # each child to copy, so the folded total only ever grows.
            scratch = metrics.Registry()
            for child in fork.contexts:
                if child.registry is not None:
                    scratch.merge_from(child.registry, rank=child.index)
            total = scratch.counter("races.shard_total").value()
            if total < ctx["last_total"]:
                return (f"merged counter total went backwards "
                        f"({total} < {ctx['last_total']})")
            if total < ctx["per_thread"]:
                return "merge missed the merging thread's own writes"
            ctx["last_total"] = total
        return None

    def teardown(ctx):
        from ..obs import metrics
        # Joins after the sanitizer uninstalled its wrapper; the final
        # merged-total equality is asserted in tests/test_obs_shards.py.
        ctx["fork"].__exit__(None, None, None)
        metrics.set_registry(ctx["previous"])

    return Scenario(
        name="shard-merge", slots=("obs.metrics.registry",),
        body=body, setup=setup, teardown=teardown,
        doc="worker threads write per-shard child registries through "
            "the fork's router while one thread repeatedly peek-merges "
            "them into a scratch registry; the needs-merge slot itself "
            "sees only reads")


def default_scenarios() -> List[Scenario]:
    return [
        _attribution_scenario(),
        _metrics_scenario(),
        _hooks_scenario(),
        _grad_mode_scenario(),
        _kernel_toggle_scenario(),
        _sig_cache_scenario(),
        _topk_scenario(),
        _shard_merge_scenario(),
    ]


def scenario_names() -> List[str]:
    return [s.name for s in default_scenarios()]


# ===================================================================== #
# Reporting / driver
# ===================================================================== #
@dataclass
class RaceReport:
    findings: List[Finding]
    scenarios: List[str] = field(default_factory=list)
    threads: int = 0
    rounds: int = 0
    accesses: int = 0

    def to_text(self) -> str:
        lines = [
            f"race-check: {len(self.scenarios)} scenario(s) x "
            f"{self.threads} threads x {self.rounds} rounds, "
            f"{self.accesses} recorded accesses",
        ]
        for name in self.scenarios:
            lines.append(f"  scenario {name}")
        lines.append(format_findings_text(self.findings))
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "counts": count_findings(self.findings),
            "findings": [finding.to_dict() for finding in self.findings],
        }
        payload["stats"] = {
            "scenarios": list(self.scenarios), "threads": self.threads,
            "rounds": self.rounds, "accesses": self.accesses,
        }
        return payload


def race_check(threads: int = 8, rounds: int = 4,
               scenarios: Optional[Sequence[Scenario]] = None,
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None) -> RaceReport:
    """Run the sanitizer scenarios and report conflicts."""
    chosen = list(scenarios) if scenarios is not None else default_scenarios()
    all_findings: List[Finding] = []
    total_accesses = 0
    for scenario in chosen:
        sanitizer = Sanitizer()
        ctx = scenario.setup(sanitizer)
        for slot_name in scenario.slots:
            sanitizer.watch(slot_name)
        try:
            failures = _run_threads(scenario, sanitizer, ctx,
                                    threads=threads, rounds=rounds)
        finally:
            sanitizer.uninstall()
            scenario.teardown(ctx)
        all_findings.extend(sanitizer.findings())
        total_accesses += len(sanitizer.log.records())
        for failure in failures:
            all_findings.append(Finding(
                kind="scenario-assertion", severity="error", code="D004",
                message=failure, where=f"scenario:{scenario.name}"))
    return RaceReport(
        findings=filter_findings(all_findings, select=select, ignore=ignore),
        scenarios=[s.name for s in chosen],
        threads=threads, rounds=rounds, accesses=total_accesses,
    )
