"""Dynamic autograd-graph checker for :mod:`repro.nn`.

:func:`check_graph` walks the reverse-mode graph hanging off a loss
tensor and reports the wiring mistakes that numpy autograd fails at
*silently*:

* **detached subgraphs** — the loss (or a parameter's whole path to it)
  does not require grad, so ``backward`` is a partial or total no-op;
* **parameters that receive no gradient** — registered with an
  optimizer but unreachable from the loss, or reachable yet handed a
  ``None``/all-zero gradient;
* **shape/dtype inconsistencies** — gradients whose shape differs from
  their parameter, non-float64 floating nodes in the graph;
* **double-backward hazards** — gradients already accumulated on graph
  nodes before ``backward`` runs, which a second pass would silently
  double.

:class:`GraphCaptureHarness` makes this runnable against *any* method
(SDEA and every baseline share it): it hooks ``Optimizer.__init__`` to
learn the trainable parameters and ``Tensor.backward`` to check the
first loss graph built over each distinct parameter set.
:func:`check_method` wires the harness to a tiny synthetic KG pair —
the ``repro check-model`` CLI entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.tensor import Tensor
from .findings import Finding

__all__ = [
    "GraphIssue", "GraphReport", "GraphCaptureHarness",
    "walk_graph", "check_graph", "check_method",
]

#: One finding about a built autograd graph.  The record (and its text
#: rendering ``[severity] kind: message``) is the shared analysis
#: finding — the same dataclass ``repro ir`` reports G-codes through
#: (:mod:`repro.analysis.findings`).
GraphIssue = Finding


@dataclass
class GraphReport:
    """Outcome of :func:`check_graph` on one loss graph."""

    num_nodes: int = 0
    num_leaves: int = 0
    params_total: int = 0
    params_reachable: int = 0
    label: str = ""
    issues: List[GraphIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity issue was found."""
        return not any(issue.severity == "error" for issue in self.issues)

    def add(self, kind: str, severity: str, message: str) -> None:
        self.issues.append(GraphIssue(kind=kind, severity=severity,
                                      message=message))

    def format(self) -> str:
        head = (f"graph {self.label or '<loss>'}: {self.num_nodes} nodes, "
                f"{self.num_leaves} leaves, "
                f"{self.params_reachable}/{self.params_total} parameters "
                "reachable")
        if not self.issues:
            return head + "\n  ok"
        return head + "\n" + "\n".join(
            f"  {issue.format()}" for issue in self.issues
        )


def walk_graph(loss: Tensor) -> List[Tensor]:
    """All tensors reachable from ``loss`` through ``_parents`` links."""
    nodes: List[Tensor] = []
    seen: set = set()
    stack = [loss]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        nodes.append(node)
        stack.extend(node._parents)
    return nodes


def _named(parameters) -> List[Tuple[str, Tensor]]:
    """Normalise a parameter iterable to ``(name, tensor)`` pairs."""
    out: List[Tuple[str, Tensor]] = []
    for index, item in enumerate(parameters or ()):
        if isinstance(item, tuple):
            name, param = item
        else:
            name, param = f"param[{index}]", item
        out.append((str(name), param))
    return out


def check_graph(loss: Tensor,
                parameters: Optional[Iterable] = None,
                run_backward: bool = True,
                label: str = "") -> GraphReport:
    """Check the autograd graph hanging off ``loss``.

    Parameters
    ----------
    loss:
        The tensor training would call ``backward()`` on.
    parameters:
        Optional trainable parameters — plain tensors or ``(name,
        tensor)`` pairs (``module.named_parameters()`` works directly).
        Reachability and gradient-delivery checks need them.
    run_backward:
        When True (default), a probe ``backward()`` runs to verify
        gradient delivery; pre-existing ``.grad`` values on reachable
        leaves are snapshotted and restored, so training state is not
        perturbed.
    label:
        Free-form tag shown in the report header.
    """
    report = GraphReport(label=label)
    named = _named(parameters)
    report.params_total = len(named)

    nodes = walk_graph(loss)
    node_ids = {id(node) for node in nodes}
    leaves = [node for node in nodes if node._backward is None]
    report.num_nodes = len(nodes)
    report.num_leaves = len(leaves)

    # -- detachment ---------------------------------------------------- #
    if not loss.requires_grad:
        report.add("detached-loss", "error",
                   "loss does not require grad — backward() is a no-op "
                   "(graph built under no_grad(), or on detached inputs)")
    if loss.data.size != 1:
        report.add("non-scalar-loss", "warning",
                   f"loss has shape {loss.shape}; backward() needs an "
                   "explicit seed gradient for non-scalars")
    if loss.data.dtype.kind != "f":
        report.add("dtype-mismatch", "error",
                   f"loss dtype is {loss.data.dtype}, expected a float "
                   "dtype")

    param_ids = {id(param) for _, param in named}
    reachable = [(name, param) for name, param in named
                 if id(param) in node_ids]
    report.params_reachable = len(reachable)
    for name, param in named:
        if id(param) not in node_ids:
            report.add("unreachable-parameter", "error",
                       f"parameter {name} (shape {param.shape}) is not in "
                       "the loss graph; it will never receive a gradient "
                       "(frozen input, detach(), or unused weight)")

    # -- per-node structural checks ------------------------------------ #
    for node in nodes:
        if node.data.dtype.kind == "f" and node.data.dtype != np.float64:
            report.add("dtype-mismatch", "warning",
                       f"graph node of shape {node.shape} has dtype "
                       f"{node.data.dtype}; the engine standard is float64")
        if node._backward is not None and node.grad is not None:
            report.add("double-backward-hazard", "warning",
                       f"intermediate node of shape {node.shape} already "
                       "holds a gradient; a second backward through this "
                       "graph would silently accumulate onto it")
    if named:
        for node in leaves:
            if node.requires_grad and id(node) not in param_ids:
                report.add("untracked-trainable-leaf", "warning",
                           f"leaf of shape {node.shape} requires grad but "
                           "is not among the provided parameters; its "
                           "gradient accumulates invisibly to the "
                           "optimizer")

    stale = [name for name, param in reachable if param.grad is not None]
    if stale:
        report.add("double-backward-hazard", "warning",
                   f"{len(stale)} parameter(s) already hold gradients "
                   f"(e.g. {stale[0]}); backward() would accumulate — "
                   "zero_grad() between steps")

    # -- probe backward: do gradients actually arrive? ----------------- #
    if run_backward and loss.requires_grad:
        grad_leaves = [node for node in leaves if node.requires_grad]
        snapshot = [(node, node.grad) for node in grad_leaves]
        for node in grad_leaves:
            node.grad = None
        try:
            Tensor.backward(loss)
        except Exception as exc:  # surface, don't crash the checker
            report.add("backward-raised", "error",
                       f"probe backward() raised {type(exc).__name__}: "
                       f"{exc}")
        else:
            for name, param in reachable:
                grad = param.grad
                if grad is None:
                    report.add("missing-gradient", "error",
                               f"parameter {name} is reachable but "
                               "received no gradient (a backward fn "
                               "returned None for its branch)")
                    continue
                if grad.shape != param.data.shape:
                    report.add("shape-mismatch", "error",
                               f"gradient shape {grad.shape} != parameter "
                               f"{name} shape {param.data.shape}")
                if not np.all(np.isfinite(grad)):
                    report.add("nonfinite-gradient", "error",
                               f"parameter {name} received a NaN/Inf "
                               "gradient")
                elif not np.any(grad):
                    report.add("zero-gradient", "warning",
                               f"parameter {name} received an all-zero "
                               "gradient (dead path — saturated relu, "
                               "zero mask, or unused branch this batch)")
        finally:
            for node, grad in snapshot:
                node.grad = grad
    return report


# ---------------------------------------------------------------------- #
# Capture harness: check any method's training graphs end-to-end
# ---------------------------------------------------------------------- #
class GraphCaptureHarness:
    """Hooks the training stack to graph-check real losses.

    While active, ``Optimizer.__init__`` records every trainable
    parameter list, and ``Tensor.backward`` — before doing its normal
    work — runs :func:`check_graph` on the first loss built over each
    distinct set of reachable gradient leaves (so multi-phase trainers
    like SDEA get one report per phase, not one per batch).

    Usage::

        with GraphCaptureHarness() as harness:
            method.fit(pair, split)
        for report in harness.reports:
            print(report.format())
    """

    def __init__(self, max_captures: int = 8):
        self.max_captures = max_captures
        self.reports: List[GraphReport] = []
        self.param_groups: List[List[Tensor]] = []
        self._signatures: set = set()
        self._busy = False
        self._originals: Dict[str, object] = {}

    # -- context management -------------------------------------------- #
    def __enter__(self) -> "GraphCaptureHarness":
        from ..nn.optim import Optimizer

        harness = self
        original_backward = Tensor.backward
        original_opt_init = Optimizer.__init__

        def wrapped_opt_init(opt_self, parameters, *args, **kwargs):
            parameters = list(parameters)
            harness.param_groups.append(parameters)
            return original_opt_init(opt_self, parameters, *args, **kwargs)

        def wrapped_backward(tensor_self, grad=None):
            if not harness._busy:
                harness._busy = True
                try:
                    harness._maybe_capture(tensor_self)
                finally:
                    harness._busy = False
            return original_backward(tensor_self, grad)

        self._originals = {
            "backward": original_backward,
            "opt_init": original_opt_init,
            "Optimizer": Optimizer,
        }
        Tensor.backward = wrapped_backward
        Optimizer.__init__ = wrapped_opt_init
        return self

    def __exit__(self, *exc) -> None:
        Tensor.backward = self._originals["backward"]
        self._originals["Optimizer"].__init__ = self._originals["opt_init"]
        self._originals = {}

    # -- capture logic -------------------------------------------------- #
    def _maybe_capture(self, loss: Tensor) -> None:
        if len(self.reports) >= self.max_captures:
            return
        leaves = frozenset(
            id(node) for node in walk_graph(loss)
            if node._backward is None and node.requires_grad
        )
        if not leaves or leaves in self._signatures:
            return
        self._signatures.add(leaves)
        # Attribute the graph to the optimizer that best matches its
        # gradient leaves: largest overlap, then highest contained
        # fraction, then most recently created.  (A stale earlier-phase
        # optimizer may still overlap via shared weights — e.g. SDEA's
        # MLM head after pre-training — and must not win, or its
        # intentionally frozen params would report as unreachable.)
        best: Optional[List[Tensor]] = None
        best_key = (-1, -1.0, -1)
        for index, group in enumerate(self.param_groups):
            overlap = sum(1 for param in group if id(param) in leaves)
            if overlap == 0:
                continue
            key = (overlap, overlap / len(group), index)
            if key > best_key:
                best_key = key
                best = group
        self.reports.append(check_graph(
            loss, parameters=best or [],
            label=f"capture{len(self.reports)}",
        ))


def _tiny_pair():
    """A ~60-entity synthetic KG pair for fast end-to-end graph checks."""
    from ..datasets import ViewConfig, WorldConfig, generate_pair
    from ..datasets.translation import Language

    return generate_pair(
        WorldConfig(n_persons=24, n_places=10, n_clubs=6, n_countries=3,
                    seed=5),
        ViewConfig(side=1, name_style="noisy", seed=6),
        ViewConfig(side=2, language=Language("zz"), seed=7),
        name="graphcheck-tiny",
    )


def _tiny_method(method_name: str):
    """Instantiate a method, shrinking SDEA to unit-test scale."""
    if method_name in ("sdea", "sdea-norel"):
        from ..core.config import SDEAConfig
        from ..experiments.methods import SDEAAligner, SDEAWithoutRelation

        config = SDEAConfig(
            bert_dim=32, bert_heads=2, bert_layers=1, bert_ff_dim=64,
            max_seq_len=32, embed_dim=32, relation_hidden=24,
            attr_epochs=1, rel_epochs=1, mlm_epochs=1, vocab_size=400,
            patience=1, seed=1,
        )
        if method_name == "sdea-norel":
            config.use_relation = False
            return SDEAWithoutRelation(config)
        return SDEAAligner(config)
    from ..experiments.methods import make_method
    return make_method(method_name)


def tiny_check_pair():
    """Public alias: the tiny synthetic pair used for fast end-to-end
    checks (also the default workload of ``repro profile``)."""
    return _tiny_pair()


def tiny_check_method(method_name: str):
    """Public alias: instantiate ``method_name`` at unit-test scale."""
    return _tiny_method(method_name)


def check_method(method_name: str, pair=None, split=None,
                 max_captures: int = 8) -> List[GraphReport]:
    """Graph-check one registered method end-to-end on a tiny pair.

    Trains the method on a small synthetic KG pair under
    :class:`GraphCaptureHarness` and returns one :class:`GraphReport`
    per captured training phase.  Methods that never call
    ``Tensor.backward`` (closed-form / non-gradient baselines) return
    an empty list.
    """
    pair = pair if pair is not None else _tiny_pair()
    split = split or pair.split()
    method = _tiny_method(method_name)
    with GraphCaptureHarness(max_captures=max_captures) as harness:
        method.fit(pair, split)
    return harness.reports
