"""Compiler-style analysis passes over a captured training step.

Each pass inspects the :class:`~repro.analysis.ir.graph.IRGraph` of a
:class:`~repro.analysis.ir.capture.StepCapture` and emits shared
:class:`~repro.analysis.findings.Finding` records with a catalogue
code.  Severities follow the gate policy in
:mod:`repro.analysis.findings`: ``info`` findings are optimisation
opportunities that never fail a build; ``warning``/``error`` findings
gate (``make ir-check`` requires zero of them on its reference
methods).

==== =================== ======== ==========================================
code kind                severity meaning
==== =================== ======== ==========================================
G001 memory-plan         info     liveness-planned activation peak vs the
                                  eager engine's keep-everything peak
G002 dead-op             warning  op recorded with grad tracking whose value
                                  never reaches the loss that ran backward
G003 dropped-gradient    error    live gradient leaf that backward delivered
                                  no gradient to
G004 fusion-opportunity  info     hand-composed subgraph coverable by a
                                  fused kernel (existing or proposed)
G005 redundant-recompute warning  same op over the same operands producing a
                                  bit-identical value more than once
G006 dtype-escape        warning  op produced a dtype the Tensor constructor
                                  silently cast away (hidden copy)
==== =================== ======== ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...nn.tensor import DEFAULT_DTYPE
from ..findings import Finding, filter_findings, format_findings_text, \
    findings_to_json, gate_findings
from .capture import StepCapture
from .graph import IRGraph, IRNode

__all__ = ["G_CODES", "MemoryPlan", "plan_memory", "run_passes", "IRReport"]

#: Catalogue: code -> (kind, severity, one-line description).
G_CODES = {
    "G001": ("memory-plan", "info",
             "liveness-planned activation peak vs eager peak"),
    "G002": ("dead-op", "warning",
             "grad-tracked op whose value never reaches the loss"),
    "G003": ("dropped-gradient", "error",
             "live gradient leaf received no gradient"),
    "G004": ("fusion-opportunity", "info",
             "hand-composed subgraph coverable by a fused kernel"),
    "G005": ("redundant-recompute", "warning",
             "bit-identical value computed more than once"),
    "G006": ("dtype-escape", "warning",
             "op produced a dtype the engine silently cast away"),
}


def _finding(code: str, message: str, where: str = "") -> Finding:
    kind, severity, _ = G_CODES[code]
    return Finding(kind=kind, severity=severity, message=message,
                   code=code, where=where)


# ---------------------------------------------------------------------- #
# G001 — liveness / memory planning
# ---------------------------------------------------------------------- #
#: What each op's backward closure actually reads, beyond shapes:
#: (parent indices whose *values* it needs, whether it needs its own
#: output).  Ops absent from this table are treated conservatively
#: (all parents + output) — fused kernels land there.
_BACKWARD_NEEDS: Dict[str, Tuple[object, bool]] = {
    "add": ((), False), "sub": ((), False), "neg": ((), False),
    "transpose": ((), False), "swapaxes": ((), False),
    "reshape": ((), False), "getitem": ((), False), "take": ((), False),
    "concatenate": ((), False), "stack": ((), False), "where": ((), False),
    "sum": ((), False), "mean": ((), False),
    "relu": ((), False), "abs": ((), False), "clip_min": ((), False),
    "mul": ("all", False), "div": ("all", False), "matmul": ("all", False),
    "pow": ((0,), False), "log": ((0,), False),
    "exp": ((), True), "sqrt": ((), True), "tanh": ((), True),
    "sigmoid": ((), True),
    "max": ((0,), True),
}


@dataclass
class MemoryPlan:
    """Liveness-planned activation memory for the captured step.

    Scope is the op-output buffers of the loss-reachable subgraph (dead
    ops are pass G002's business; parameters and input constants are
    outside the planner's control).  ``eager_peak_bytes`` is what the
    engine holds at backward start — every one of those outputs is
    pinned by the closure chain hanging off the root — and is therefore
    a lower bound on the profiler's measured ``peak_tensor_bytes`` for
    the same step.  ``planned_peak_bytes`` frees each buffer after its
    last structural use (forward consumers + what backward closures
    actually read), so planned <= eager <= measured.
    """

    eager_peak_bytes: int = 0
    planned_peak_bytes: int = 0
    planned_alloc_bytes: int = 0     # with greedy exact-size slot reuse
    slots: int = 0                   # distinct buffers under reuse
    ops_planned: int = 0
    timeline: int = 0                # forward + backward positions
    last_use: Dict[int, int] = field(default_factory=dict)

    @property
    def avoidable_bytes(self) -> int:
        return max(0, self.eager_peak_bytes - self.planned_peak_bytes)

    def summary(self) -> Dict[str, object]:
        return {
            "eager_peak_bytes": self.eager_peak_bytes,
            "planned_peak_bytes": self.planned_peak_bytes,
            "planned_alloc_bytes": self.planned_alloc_bytes,
            "avoidable_bytes": self.avoidable_bytes,
            "slots": self.slots,
            "ops_planned": self.ops_planned,
        }


def plan_memory(capture: StepCapture) -> MemoryPlan:
    graph = capture.graph
    live = graph.live_set()
    ops = [node for node in graph.op_nodes() if node.uid in live]
    pos = {node.uid: i for i, node in enumerate(ops)}
    forward_len = len(ops)

    last_use: Dict[int, int] = {node.uid: pos[node.uid] for node in ops}
    for node in graph.nodes:
        if node.uid not in live:
            continue
        for parent in node.parents:
            if parent in pos and node.uid in pos:
                last_use[parent] = max(last_use[parent], pos[node.uid])

    dispatch_len = 0
    for t, uid in enumerate(graph.dispatch_order):
        node = graph._by_uid().get(uid)
        if node is None or node.uid not in pos:
            continue
        bpos = forward_len + t
        dispatch_len = max(dispatch_len, t + 1)
        parents_needed, needs_out = _BACKWARD_NEEDS.get(
            node.op, ("all", True))
        if needs_out:
            last_use[uid] = max(last_use[uid], bpos)
        indices = range(len(node.parents)) if parents_needed == "all" \
            else parents_needed
        for i in indices:
            if i < len(node.parents) and node.parents[i] in pos:
                parent = node.parents[i]
                last_use[parent] = max(last_use[parent], bpos)

    timeline = forward_len + dispatch_len
    if graph.root in pos:
        # The loss value is read by the trainer after the step.
        last_use[graph.root] = timeline

    frees: Dict[int, List[int]] = {}
    for uid, t in last_use.items():
        frees.setdefault(min(t, timeline), []).append(uid)

    plan = MemoryPlan(ops_planned=forward_len, timeline=timeline,
                      last_use=dict(last_use))
    plan.eager_peak_bytes = sum(node.out_bytes for node in ops)
    pool: Dict[int, int] = {}
    live_bytes = 0
    for t in range(timeline + 1):
        if t < forward_len:
            size = ops[t].out_bytes
            if pool.get(size, 0) > 0:
                pool[size] -= 1
            else:
                plan.slots += 1
                plan.planned_alloc_bytes += size
            live_bytes += size
            plan.planned_peak_bytes = max(plan.planned_peak_bytes,
                                          live_bytes)
        for uid in frees.get(t, ()):
            size = graph.node(uid).out_bytes
            live_bytes -= size
            pool[size] = pool.get(size, 0) + 1
    return plan


def _pass_memory(capture: StepCapture,
                 plan: MemoryPlan) -> List[Finding]:
    if plan.ops_planned == 0:
        return []
    eager, planned = plan.eager_peak_bytes, plan.planned_peak_bytes
    pct = 100.0 * plan.avoidable_bytes / eager if eager else 0.0
    return [_finding(
        "G001",
        f"planned activation peak {planned:,} B vs eager {eager:,} B "
        f"({pct:.0f}% avoidable) across {plan.ops_planned} ops using "
        f"{plan.slots} reusable buffers",
    )]


# ---------------------------------------------------------------------- #
# G002 — dead ops
# ---------------------------------------------------------------------- #
def _pass_dead_ops(capture: StepCapture, limit: int = 20) -> List[Finding]:
    graph = capture.graph
    live = graph.live_set()
    dead = [node for node in graph.op_nodes() if node.uid not in live]
    if not dead:
        return []
    dead_uids = {node.uid for node in dead}
    consumers = graph.consumers()
    findings = []
    sinks = [node for node in dead if not consumers[node.uid]]
    for node in sinks[:limit]:
        upstream = sum(1 for uid in graph.ancestors(node.uid)
                       if uid in dead_uids)
        extra = f" (+{upstream} dead ops upstream)" if upstream else ""
        findings.append(_finding(
            "G002",
            f"{node.label()} shape {node.shape} is grad-tracked but never "
            f"reaches the loss{extra}; wrap it in no_grad() or detach",
            where=node.module,
        ))
    if len(sinks) > limit:
        findings.append(_finding(
            "G002", f"... and {len(sinks) - limit} more dead sinks "
            f"({len(dead)} dead ops total)"))
    return findings


# ---------------------------------------------------------------------- #
# G003 — dropped gradients
# ---------------------------------------------------------------------- #
def _pass_dropped_gradients(capture: StepCapture) -> List[Finding]:
    graph = capture.graph
    live = graph.live_set()
    findings = []
    for node in capture.grad_leaves():
        if node.uid not in live:
            continue
        before = capture.grads_before.get(node.uid)
        after = capture.grads_after.get(node.uid)
        if before is None and after is None:
            findings.append(_finding(
                "G003",
                f"leaf {node.label()} shape {node.shape} feeds the loss "
                "but backward delivered it no gradient (a backward "
                "returned None for this operand)",
                where=node.module,
            ))
    return findings


# ---------------------------------------------------------------------- #
# G004 — fusion legality / opportunities
# ---------------------------------------------------------------------- #
_ELEMENTWISE = {"add", "sub", "mul", "div", "neg", "pow", "exp", "log",
                "sqrt", "tanh", "sigmoid", "relu", "abs", "clip_min",
                "where"}


def _match_softmax_templates(graph: IRGraph,
                             claimed: Set[int]) -> List[Finding]:
    """Structural softmax / log-softmax patterns, module-independent."""
    findings = []
    by_uid = graph._by_uid()
    for node in graph.op_nodes():
        # softmax: div(E, sum(E)) with E = exp(...)
        if node.op == "div" and len(node.parents) == 2:
            e, s = (by_uid.get(p) for p in node.parents)
            if (e is not None and s is not None and e.op == "exp"
                    and s.op == "sum" and s.parents == (e.uid,)):
                findings.append(_finding(
                    "G004",
                    f"hand-composed softmax at {node.label()} shape "
                    f"{node.shape}; coverable by kernels.fused_softmax",
                    where=node.module,
                ))
                claimed.update({node.uid, e.uid, s.uid})
        # log-softmax: sub(x, log(sum(exp(x))))
        if node.op == "sub" and len(node.parents) == 2:
            shifted_uid, log_uid = node.parents
            log_node = by_uid.get(log_uid)
            if log_node is None or log_node.op != "log" \
                    or len(log_node.parents) != 1:
                continue
            sum_node = by_uid.get(log_node.parents[0])
            if sum_node is None or sum_node.op != "sum" \
                    or len(sum_node.parents) != 1:
                continue
            exp_node = by_uid.get(sum_node.parents[0])
            if exp_node is None or exp_node.op != "exp" \
                    or exp_node.parents != (shifted_uid,):
                continue
            findings.append(_finding(
                "G004",
                f"hand-composed log-softmax at {node.label()} shape "
                f"{node.shape}; coverable by kernels.fused_log_softmax",
                where=node.module,
            ))
            claimed.update({node.uid, log_node.uid, sum_node.uid,
                            exp_node.uid})
    return findings


_MODULE_KERNELS = (
    # (module-path fragment, witness op, fused kernel to propose)
    ("LayerNorm", "sqrt", "kernels.fused_layer_norm"),
    ("GRUCell", "sigmoid", "kernels.fused_gru_cell"),
)


def _match_module_kernels(graph: IRGraph,
                          claimed: Set[int]) -> List[Finding]:
    """Attribution-based matches: composed ops inside modules the fused
    kernel registry already covers.  Deduped per module path."""
    findings = []
    seen: Set[Tuple[str, str]] = set()
    for node in graph.op_nodes():
        for fragment, witness, kernel in _MODULE_KERNELS:
            if node.op != witness or fragment not in node.module:
                continue
            key = (fragment, node.module)
            if key in seen:
                continue
            seen.add(key)
            findings.append(_finding(
                "G004",
                f"composed {fragment} subgraph; coverable by {kernel}",
                where=node.module,
            ))
    for node in graph.op_nodes():
        if any(fragment in node.module for fragment, _, _ in _MODULE_KERNELS):
            claimed.add(node.uid)
    return findings


def _match_elementwise_chains(graph: IRGraph, claimed: Set[int],
                              min_length: int = 4) -> List[Finding]:
    """Maximal single-consumer same-shape elementwise chains: legal to
    fuse into one traversal; proposes a *new* kernel."""
    by_uid = graph._by_uid()
    consumers = graph.consumers()
    link: Dict[int, int] = {}
    for node in graph.op_nodes():
        if node.op not in _ELEMENTWISE:
            continue
        outs = consumers[node.uid]
        if len(outs) != 1:
            continue
        nxt = by_uid.get(outs[0])
        if nxt is None or nxt.kind != "op" or nxt.op not in _ELEMENTWISE \
                or nxt.shape != node.shape:
            continue
        link[node.uid] = nxt.uid
    has_incoming = set(link.values())
    findings = []
    for start in sorted(link):
        if start in has_incoming:
            continue
        chain = [start]
        while chain[-1] in link:
            chain.append(link[chain[-1]])
        if len(chain) < min_length or any(uid in claimed for uid in chain):
            continue
        head = by_uid[chain[0]]
        ops = "→".join(by_uid[uid].op for uid in chain)
        findings.append(_finding(
            "G004",
            f"fusable elementwise chain of {len(chain)} ops ({ops}) over "
            f"shape {head.shape}; candidate for a new fused kernel",
            where=head.module,
        ))
    return findings


def _pass_fusion(capture: StepCapture) -> List[Finding]:
    graph = capture.graph
    claimed: Set[int] = set()
    findings = _match_softmax_templates(graph, claimed)
    findings += _match_module_kernels(graph, claimed)
    findings += _match_elementwise_chains(graph, claimed)
    return findings


# ---------------------------------------------------------------------- #
# G005 — redundant recompute (value CSE)
# ---------------------------------------------------------------------- #
def _pass_redundant_recompute(capture: StepCapture,
                              limit: int = 10) -> List[Finding]:
    graph = capture.graph
    groups: Dict[Tuple, List[IRNode]] = {}
    for node in graph.op_nodes():
        key = (node.op, node.parents, node.shape, node.dtype)
        groups.setdefault(key, []).append(node)
    findings = []
    for (op, _parents, shape, _dtype), nodes in groups.items():
        if len(nodes) < 2:
            continue
        # Ops can carry hidden attributes (axes, indices) that are not
        # part of the key, so demand bit-identical outputs before
        # calling two nodes the same value.
        by_bytes: Dict[bytes, List[IRNode]] = {}
        for node in nodes:
            by_bytes.setdefault(
                capture.tensors[node.uid].data.tobytes(), []).append(node)
        for dupes in by_bytes.values():
            if len(dupes) < 2 or len(findings) >= limit:
                continue
            labels = ", ".join(n.label() for n in dupes[:4])
            findings.append(_finding(
                "G005",
                f"{op} over the same operands computed {len(dupes)}× with "
                f"bit-identical results ({labels}, shape {shape}); "
                "compute once and reuse",
                where=dupes[0].module,
            ))
    return findings


# ---------------------------------------------------------------------- #
# G006 — dtype escapes
# ---------------------------------------------------------------------- #
def _pass_dtype_escapes(capture: StepCapture,
                        limit: int = 10) -> List[Finding]:
    default = np.dtype(DEFAULT_DTYPE).name
    findings = []
    for node in capture.graph.op_nodes():
        if len(findings) >= limit:
            break
        if node.raw_dtype != node.dtype:
            findings.append(_finding(
                "G006",
                f"{node.label()} computed {node.raw_dtype} but is stored "
                f"as {node.dtype}: the Tensor constructor silently "
                "cast-copied it; fix the operand dtypes",
                where=node.module,
            ))
        elif np.dtype(node.dtype).kind in "fc" and node.dtype != default:
            findings.append(_finding(
                "G006",
                f"{node.label()} carries {node.dtype}, not the engine "
                f"default {default}",
                where=node.module,
            ))
    return findings


# ---------------------------------------------------------------------- #
# Pass manager / report
# ---------------------------------------------------------------------- #
@dataclass
class IRReport:
    """Everything ``repro ir`` shows for one captured step."""

    method: str
    graph_summary: Dict[str, object]
    findings: List[Finding]
    plan: MemoryPlan
    replay: Optional[object] = None     # ReplayResult when --replay ran

    @property
    def gating(self) -> List[Finding]:
        return gate_findings(self.findings)

    def to_text(self) -> str:
        s = self.graph_summary
        lines = [
            f"IR capture: method={self.method or '?'} nodes={s['nodes']} "
            f"ops={s['op_nodes']} root=%{s['root']} "
            f"dispatched={s['dispatched']}",
            f"memory plan: eager {self.plan.eager_peak_bytes:,} B -> "
            f"planned {self.plan.planned_peak_bytes:,} B "
            f"({self.plan.slots} buffers)",
        ]
        if self.replay is not None:
            r = self.replay.summary()
            lines.append(
                f"replay: {'ok' if r['ok'] else 'FAILED'} "
                f"forward {r['forward']} grads {r['grads']} "
                f"opaque {r['opaque_ops']} in {r['seconds']}s")
        lines.append(format_findings_text(self.findings))
        return "\n".join(lines)

    def to_json(self) -> str:
        extra: Dict[str, object] = {
            "method": self.method,
            "graph": self.graph_summary,
            "plan": self.plan.summary(),
        }
        if self.replay is not None:
            extra["replay"] = self.replay.summary()
        return findings_to_json(self.findings, extra=extra)


def run_passes(capture: StepCapture,
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None) -> IRReport:
    """Run every analysis pass and assemble the report."""
    plan = plan_memory(capture)
    findings: List[Finding] = []
    findings += _pass_memory(capture, plan)
    findings += _pass_dead_ops(capture)
    findings += _pass_dropped_gradients(capture)
    findings += _pass_fusion(capture)
    findings += _pass_redundant_recompute(capture)
    findings += _pass_dtype_escapes(capture)
    if capture.graph.overflowed:
        findings.append(Finding(
            kind="capture-overflow", severity="warning",
            message="capture hit its op budget; analysis is partial"))
    findings = filter_findings(findings, select=select, ignore=ignore)
    return IRReport(method=capture.method,
                    graph_summary=capture.graph.summary(),
                    findings=findings, plan=plan)
