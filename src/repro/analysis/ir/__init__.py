"""Training-step IR: capture, analysis passes, verified replay.

The pipeline (``repro ir``) is capture → analyze → verify:

1. :class:`IRCapture` / :func:`capture_method` record one fwd+bwd step
   of real training into an explicit SSA-style op graph
   (:class:`IRGraph`) using the same hook points as the op profiler.
2. :func:`run_passes` runs the G001–G006 analyses (liveness/memory
   planning, dead ops, dropped gradients, fusion legality, value CSE,
   dtype escapes) and returns an :class:`IRReport` of shared
   :class:`~repro.analysis.findings.Finding` records.
3. :func:`replay` re-executes the captured step and asserts outputs
   and leaf gradients are bit-for-bit identical to what the eager
   engine produced — the proof that the IR is a faithful model.
"""

from .capture import IRCapture, StepCapture, capture_method, capture_step
from .graph import IRGraph, IRNode, NODE_KINDS
from .passes import G_CODES, IRReport, MemoryPlan, plan_memory, run_passes
from .replay import ReplayResult, replay

__all__ = [
    "IRCapture", "StepCapture", "capture_method", "capture_step",
    "IRGraph", "IRNode", "NODE_KINDS",
    "G_CODES", "IRReport", "MemoryPlan", "plan_memory", "run_passes",
    "ReplayResult", "replay",
]
