"""SSA-style op graph over one captured training step.

:class:`IRGraph` is a pure data structure: one :class:`IRNode` per
value the autograd engine materialised during the captured window, in
creation (SSA) order, plus the backward root and the exact
``_backward_dispatch`` schedule the engine executed.  Everything the
analysis passes (:mod:`repro.analysis.ir.passes`) and the replay
executor (:mod:`repro.analysis.ir.replay`) need that is *not* a numpy
array lives here; the arrays, backward closures and leaf snapshots stay
on the owning :class:`repro.analysis.ir.capture.StepCapture`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

__all__ = ["IRNode", "IRGraph", "NODE_KINDS"]

#: ``op``       — created through ``Tensor._make_child`` in the window;
#: ``leaf``     — trainable source (requires_grad, no backward): a param;
#: ``const``    — non-trainable source (batch data, masks, constants);
#: ``external`` — op node created *before* the window that the captured
#:                step still depends on (registered on demand).
NODE_KINDS = ("op", "leaf", "const", "external")


@dataclass(frozen=True)
class IRNode:
    """One SSA value in a captured step."""

    uid: int
    op: str                     # friendly op name ("matmul"); kind for sources
    kind: str                   # one of NODE_KINDS
    shape: Tuple[int, ...]
    dtype: str                  # stored dtype (after the Tensor ctor cast)
    raw_dtype: str              # dtype of the raw numpy result pre-cast
    parents: Tuple[int, ...]
    module: str                 # shared attribution path ("" for sources)
    requires_grad: bool
    has_backward: bool

    @property
    def out_bytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * \
            np.dtype(self.dtype).itemsize

    def label(self) -> str:
        return f"%{self.uid}:{self.op}"


@dataclass
class IRGraph:
    """The captured op graph plus the backward schedule."""

    nodes: List[IRNode] = field(default_factory=list)
    root: Optional[int] = None          # uid backward() was called on
    dispatch_order: List[int] = field(default_factory=list)
    overflowed: bool = False            # capture hit its op budget

    # ------------------------------------------------------------------ #
    # Lookup / structure
    # ------------------------------------------------------------------ #
    def node(self, uid: int) -> IRNode:
        found = self._by_uid().get(uid)
        if found is None:
            raise KeyError(f"no IR node with uid {uid}")
        return found

    def _by_uid(self) -> Dict[int, IRNode]:
        cache = getattr(self, "_uid_cache", None)
        if cache is None or len(cache) != len(self.nodes):
            cache = {node.uid: node for node in self.nodes}
            object.__setattr__(self, "_uid_cache", cache)
        return cache

    def op_nodes(self) -> List[IRNode]:
        """Nodes computed inside the window, in creation order."""
        return [node for node in self.nodes if node.kind == "op"]

    def source_nodes(self) -> List[IRNode]:
        return [node for node in self.nodes
                if node.kind in ("leaf", "const", "external")]

    def consumers(self) -> Dict[int, List[int]]:
        """``uid -> uids of nodes that read it`` (creation order)."""
        out: Dict[int, List[int]] = {node.uid: [] for node in self.nodes}
        for node in self.nodes:
            for parent in node.parents:
                out[parent].append(node.uid)
        return out

    def ancestors(self, uid: int) -> Set[int]:
        """Transitive parents of ``uid`` (excluding ``uid`` itself)."""
        seen: Set[int] = set()
        stack = list(self.node(uid).parents)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.node(current).parents)
        return seen

    def topo_order(self) -> List[int]:
        """Deterministic parents-before-children order over all nodes.

        Creation (uid) order is already topological for in-window
        nodes; external nodes are registered lazily during backward and
        can carry later uids than their consumers, so a DFS reorder is
        required before forward replay.
        """
        order: List[int] = []
        state: Dict[int, int] = {}  # 0 = visiting, 1 = done
        for start in sorted(node.uid for node in self.nodes):
            if start in state:
                continue
            stack: List[Tuple[int, bool]] = [(start, False)]
            while stack:
                uid, processed = stack.pop()
                if processed:
                    state[uid] = 1
                    order.append(uid)
                    continue
                if state.get(uid) == 1:
                    continue
                state[uid] = 0
                stack.append((uid, True))
                for parent in reversed(self.node(uid).parents):
                    if state.get(parent) != 1:
                        stack.append((parent, False))
        return order

    # ------------------------------------------------------------------ #
    # Reachability relative to the backward root
    # ------------------------------------------------------------------ #
    def live_set(self) -> Set[int]:
        """Uids the loss actually depends on: root + its ancestors."""
        if self.root is None:
            return set()
        return self.ancestors(self.root) | {self.root}

    def grad_reachable(self) -> Set[int]:
        """Nodes the engine's backward delivers a gradient to.

        Mirrors ``Tensor._backward_dispatch``: starting at the root, a
        node's gradient flows to a parent iff the parent requires grad
        or has a backward function of its own.
        """
        if self.root is None:
            return set()
        reached: Set[int] = {self.root}
        stack = [self.root]
        while stack:
            node = self.node(stack.pop())
            if not node.has_backward:
                continue
            for parent_uid in node.parents:
                parent = self.node(parent_uid)
                if parent_uid in reached:
                    continue
                if parent.requires_grad or parent.has_backward:
                    reached.add(parent_uid)
                    stack.append(parent_uid)
        return reached

    # ------------------------------------------------------------------ #
    # Summaries / export
    # ------------------------------------------------------------------ #
    def total_op_bytes(self) -> int:
        return sum(node.out_bytes for node in self.op_nodes())

    def summary(self) -> Dict[str, object]:
        ops = self.op_nodes()
        kinds: Dict[str, int] = {}
        for node in self.nodes:
            kinds[node.kind] = kinds.get(node.kind, 0) + 1
        return {
            "nodes": len(self.nodes),
            "op_nodes": len(ops),
            "kinds": kinds,
            "root": self.root,
            "dispatched": len(self.dispatch_order),
            "op_output_bytes": self.total_op_bytes(),
            "overflowed": self.overflowed,
        }

    def to_dot(self, max_nodes: int = 400) -> str:
        """Graphviz rendering; module attribution uses the same shared
        path builder as the chrome-trace exporter
        (:mod:`repro.obs.attribution`), so the two never disagree."""
        lines = ["digraph ir_step {",
                 "  rankdir=TB;",
                 '  node [shape=box, fontname="monospace", fontsize=9];']
        shown = self.nodes[:max_nodes]
        shown_uids = {node.uid for node in shown}
        for node in shown:
            label = f"{node.label()}\\n{node.shape} {node.dtype}"
            if node.module:
                label += f"\\n{node.module}"
            style = ""
            if node.kind == "leaf":
                style = ', style=filled, fillcolor="#d0e8ff"'
            elif node.kind == "const":
                style = ', style=filled, fillcolor="#eeeeee"'
            elif node.kind == "external":
                style = ', style=dashed'
            if self.root == node.uid:
                style += ', color="#cc0000", penwidth=2'
            lines.append(f'  n{node.uid} [label="{label}"{style}];')
        for node in shown:
            for parent in node.parents:
                if parent in shown_uids:
                    lines.append(f"  n{parent} -> n{node.uid};")
        if len(self.nodes) > max_nodes:
            lines.append(f'  truncated [label="... {len(self.nodes) - max_nodes}'
                         ' more nodes", shape=plaintext];')
        lines.append("}")
        return "\n".join(lines)
