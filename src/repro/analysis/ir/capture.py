"""Capture one fwd+bwd training step into an explicit IR graph.

:class:`IRCapture` reuses the three hook points the profiler and
graphcheck proved out — ``Tensor._make_child`` (forward op stream),
``Tensor._backward_dispatch`` (backward schedule) and
``Tensor.backward`` (step delimiter) — plus the shared module-path
tracker from :mod:`repro.obs.attribution`, and records a *window* of
grad-tracked ops ending at a ``backward()`` call.

Step selection: the window that starts at install spans arbitrary
setup work (pre-training phases, data prep), so the harness captures
the first backward only as a **fallback**, resets the window, and
prefers the next backward — whose window is exactly one training step
(zero_grad → forward → backward).  ``StepCapture.clean`` records which
case happened.

Everything replay needs is snapshotted at capture time: source-tensor
data (parameters mutate in place under the optimizer), pre/post
backward ``.grad`` values of every gradient leaf, the seed gradient,
and the exact dispatch order.  Op attributes (axes, indices, masks)
are *not* passed to ``_make_child``; the replay executor recovers them
from each op's backward-closure free variables
(:mod:`repro.analysis.ir.replay`).

Tensors created before the window that the captured step still reads
(cross-phase intermediates) are registered on demand — as ``leaf`` /
``const`` sources, or ``external`` op nodes when the engine's backward
walks through them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ...nn.tensor import Tensor
from ...obs.attribution import ModulePathTracker, op_name_from_backward
from .graph import IRGraph, IRNode

__all__ = ["StepCapture", "IRCapture", "capture_step", "capture_method"]


@dataclass
class StepCapture:
    """One captured training step: graph + arrays + closures."""

    graph: IRGraph
    tensors: Dict[int, Tensor]                  # uid -> live tensor (strong)
    backwards: Dict[int, Callable]              # uid -> backward closure
    source_data: Dict[int, np.ndarray]          # uid -> leaf/const snapshot
    grads_before: Dict[int, Optional[np.ndarray]]
    grads_after: Dict[int, Optional[np.ndarray]]
    seed_grad: np.ndarray
    clean: bool                                 # window = exactly one step
    step_index: int                             # which backward call (0-based)
    method: str = ""

    def grad_leaves(self) -> List[IRNode]:
        """Gradient-accumulating sources (trainable leaves)."""
        return [node for node in self.graph.nodes
                if node.requires_grad and not node.has_backward]


class IRCapture:
    """Context manager that records one fwd+bwd step while code runs.

    Usage::

        with IRCapture() as harness:
            method.fit(pair, split)
        capture = harness.capture     # None if backward never ran
    """

    def __init__(self, max_ops: int = 200_000, max_attempts: int = 3):
        self.max_ops = int(max_ops)
        self.max_attempts = int(max_attempts)
        self.captures: List[StepCapture] = []
        self._done = False
        self._busy = False
        self._overflowed = False
        self._window_clean = False
        self._backward_count = 0
        self._paths = ModulePathTracker()
        self._reset_window()
        self._originals: Dict[str, object] = {}
        self._hook_handle = None
        self._capturing_dispatch = False
        self._dispatch: List[int] = []
        self._grads_before: Dict[int, Optional[np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # Result access
    # ------------------------------------------------------------------ #
    @property
    def capture(self) -> Optional[StepCapture]:
        """The preferred capture: the last clean one, else the last."""
        for cap in reversed(self.captures):
            if cap.clean:
                return cap
        return self.captures[-1] if self.captures else None

    # ------------------------------------------------------------------ #
    # Install / uninstall
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "IRCapture":
        from ...nn.module import register_forward_hooks

        harness = self
        orig_make_child = Tensor._make_child
        orig_dispatch = Tensor._backward_dispatch
        orig_backward = Tensor.backward

        def captured_make_child(tensor_self, data, parents, backward):
            out = orig_make_child(tensor_self, data, parents, backward)
            if not harness._done and out._backward is not None:
                harness._record_op(out, parents, data)
            return out

        def captured_dispatch(tensor_self, grad, grads):
            if harness._capturing_dispatch:
                uid = harness._ids.get(id(tensor_self))
                if uid is None:
                    uid = harness._register_source(tensor_self)
                harness._dispatch.append(uid)
            return orig_dispatch(tensor_self, grad, grads)

        def captured_backward(tensor_self, grad=None):
            return harness._on_backward(tensor_self, grad, orig_backward)

        self._originals = {
            "make_child": orig_make_child,
            "dispatch": orig_dispatch,
            "backward": orig_backward,
        }
        Tensor._make_child = captured_make_child
        Tensor._backward_dispatch = captured_dispatch
        Tensor.backward = captured_backward
        self._hook_handle = register_forward_hooks(
            pre=self._paths.push, post=lambda module: self._paths.pop()
        )
        return self

    def __exit__(self, *exc) -> None:
        Tensor._make_child = self._originals["make_child"]
        Tensor._backward_dispatch = self._originals["dispatch"]
        Tensor.backward = self._originals["backward"]
        self._originals = {}
        if self._hook_handle is not None:
            self._hook_handle.remove()
            self._hook_handle = None

    # ------------------------------------------------------------------ #
    # Window recording
    # ------------------------------------------------------------------ #
    def _reset_window(self) -> None:
        self._uid = 0
        self._ids: Dict[int, int] = {}          # id(tensor) -> uid
        self._tensors: Dict[int, Tensor] = {}   # strong refs keep ids valid
        self._backwards: Dict[int, Callable] = {}
        self._nodes: List[IRNode] = []
        self._overflowed = False
        self._window_clean = self._backward_count > 0

    def _next_uid(self) -> int:
        uid = self._uid
        self._uid += 1
        return uid

    def _record_op(self, out: Tensor, parents, raw_data) -> None:
        if len(self._nodes) >= self.max_ops:
            self._overflowed = True
            return
        parent_uids = tuple(self._ids.get(id(p), -1) for p in parents)
        if any(uid < 0 for uid in parent_uids):
            parent_uids = tuple(
                uid if uid >= 0 else self._register_source(parent)
                for uid, parent in zip(parent_uids, parents)
            )
        uid = self._next_uid()
        node = IRNode(
            uid=uid,
            op=op_name_from_backward(out._backward),
            kind="op",
            shape=out.shape,
            dtype=str(out.dtype),
            raw_dtype=str(getattr(raw_data, "dtype", out.dtype)),
            parents=parent_uids,
            module=self._paths.path(),
            requires_grad=out.requires_grad,
            has_backward=True,
        )
        self._ids[id(out)] = uid
        self._tensors[uid] = out
        self._backwards[uid] = out._backward
        self._nodes.append(node)

    def _register_source(self, t: Tensor) -> int:
        """Register a tensor created outside the window (lazily).

        Sources with their own backward are ``external`` op nodes whose
        ancestry is registered recursively — the engine's backward will
        walk through them, so dispatch replay needs the full chain.
        """
        existing = self._ids.get(id(t))
        if existing is not None:
            return existing
        if t._backward is not None:
            parent_uids = tuple(self._register_source(p) for p in t._parents)
            uid = self._next_uid()
            node = IRNode(
                uid=uid, op=op_name_from_backward(t._backward),
                kind="external", shape=t.shape, dtype=str(t.dtype),
                raw_dtype=str(t.dtype), parents=parent_uids, module="",
                requires_grad=t.requires_grad, has_backward=True,
            )
            self._backwards[uid] = t._backward
        else:
            uid = self._next_uid()
            kind = "leaf" if t.requires_grad else "const"
            node = IRNode(
                uid=uid, op=kind, kind=kind, shape=t.shape,
                dtype=str(t.dtype), raw_dtype=str(t.dtype), parents=(),
                module="", requires_grad=t.requires_grad, has_backward=False,
            )
            if self._capturing_dispatch and t.requires_grad:
                # Discovered mid-backward: its .grad has not been
                # accumulated yet (leaves accumulate only after every
                # consumer dispatched), so this snapshot is "before".
                self._grads_before[uid] = \
                    None if t.grad is None else t.grad.copy()
        self._ids[id(t)] = uid
        self._tensors[uid] = t
        self._nodes.append(node)
        return uid

    # ------------------------------------------------------------------ #
    # Step delimitation / finalisation
    # ------------------------------------------------------------------ #
    def _on_backward(self, root: Tensor, grad, orig_backward):
        if self._done or self._busy:
            return orig_backward(root, grad)
        root_uid = self._ids.get(id(root))
        if root_uid is None:
            # Backward over a graph built before the window (or a bare
            # leaf): run it, but still treat it as a step boundary.
            result = orig_backward(root, grad)
            self._backward_count += 1
            self._reset_window()
            return result
        self._busy = True
        try:
            capture = self._finalize(root, root_uid, grad, orig_backward)
        finally:
            self._busy = False
        self._backward_count += 1
        self.captures.append(capture)
        if capture.clean or len(self.captures) >= self.max_attempts:
            self._done = True
        self._reset_window()
        return None  # Tensor.backward returns None

    def _finalize(self, root: Tensor, root_uid: int, grad,
                  orig_backward) -> StepCapture:
        seed = np.ones_like(root.data) if grad is None \
            else np.asarray(grad, dtype=np.float64)
        self._grads_before = {}
        for node in self._nodes:
            if node.requires_grad and not node.has_backward:
                t = self._tensors[node.uid]
                self._grads_before[node.uid] = \
                    None if t.grad is None else t.grad.copy()
        self._dispatch = []
        self._capturing_dispatch = not self._overflowed
        try:
            orig_backward(root, grad)
        finally:
            self._capturing_dispatch = False

        grads_after: Dict[int, Optional[np.ndarray]] = {}
        source_data: Dict[int, np.ndarray] = {}
        for node in self._nodes:
            t = self._tensors[node.uid]
            if node.kind != "op":
                # Sources can be mutated later (optimizer steps write
                # parameters in place); snapshot for bit-exact replay.
                source_data[node.uid] = t.data.copy()
            if node.requires_grad and not node.has_backward:
                grads_after[node.uid] = \
                    None if t.grad is None else t.grad.copy()
        graph = IRGraph(nodes=list(self._nodes), root=root_uid,
                        dispatch_order=list(self._dispatch),
                        overflowed=self._overflowed)
        return StepCapture(
            graph=graph,
            tensors=dict(self._tensors),
            backwards=dict(self._backwards),
            source_data=source_data,
            grads_before=dict(self._grads_before),
            grads_after=grads_after,
            seed_grad=np.array(seed, dtype=np.float64, copy=True),
            clean=self._window_clean,
            step_index=self._backward_count,
        )


# ---------------------------------------------------------------------- #
# Convenience entry points
# ---------------------------------------------------------------------- #
def capture_step(fn: Callable[[], object], label: str = "") -> StepCapture:
    """Run ``fn`` under capture and return the captured step.

    ``fn`` must build a loss and call ``backward()`` at least once.
    """
    with IRCapture() as harness:
        fn()
    capture = harness.capture
    if capture is None:
        raise RuntimeError(
            f"{label or 'callable'} never called backward() on a recorded "
            "graph; nothing to capture"
        )
    capture.method = label
    return capture


def capture_method(method_name: str, pair=None, split=None) -> StepCapture:
    """Capture one training step of a registered method.

    Runs the method at unit-test scale on the tiny synthetic pair (the
    same workload ``repro check-model`` and ``repro profile`` use) and
    returns the captured step.  Non-gradient (closed-form) methods
    raise ``RuntimeError``.
    """
    from ..graphcheck import tiny_check_method, tiny_check_pair

    pair = pair if pair is not None else tiny_check_pair()
    split = split or pair.split()
    method = tiny_check_method(method_name)
    with IRCapture() as harness:
        method.fit(pair, split)
    capture = harness.capture
    if capture is None:
        raise RuntimeError(
            f"method {method_name!r} never called backward() during fit "
            "(closed-form / non-gradient method); nothing to capture"
        )
    capture.method = method_name
    return capture
