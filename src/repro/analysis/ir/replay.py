"""Verified replay of a captured training step.

The executor re-runs a :class:`~repro.analysis.ir.capture.StepCapture`
from its source snapshots and asserts **bit-for-bit** agreement with
what the eager engine produced at capture time:

* forward: every in-window op output is recomputed from the IR (op
  semantics + attributes recovered from the op's backward-closure free
  variables) and compared against the recorded array via ``tobytes()``;
* backward: the engine's exact topological walk is re-simulated over
  IR uids — same DFS order, same ``grads[key] = grads[key] + c``
  accumulation, same leaf ``_accumulate`` semantics — and every leaf's
  final gradient is compared against the snapshot taken at capture.

Ops whose forward cannot be reconstructed (fused kernels, unknown ops)
fall back to the recorded output and are counted in ``opaque_ops``;
their backward still replays exactly because the captured closures are
the originals.  Closures read ``parent.data`` live, so source tensors
(parameters the optimizer has since stepped) get their captured
snapshots swapped in for the duration of the backward replay and
restored afterwards.

The forward frees each value at its last use and tracks the resulting
peak, giving an *executed* counterpart to the liveness plan of pass
G001 (:mod:`repro.analysis.ir.passes`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ...nn.tensor import DEFAULT_DTYPE
from .capture import StepCapture
from .graph import IRGraph, IRNode

__all__ = ["ReplayResult", "replay", "engine_topo_order", "closure_freevars"]


@dataclass
class ReplayResult:
    """Outcome of one verified replay."""

    ok: bool = True
    forward_checked: int = 0
    forward_matched: int = 0
    grads_checked: int = 0
    grads_matched: int = 0
    opaque_ops: List[str] = field(default_factory=list)
    dispatch_matched: bool = True
    mismatches: List[str] = field(default_factory=list)
    replay_peak_bytes: int = 0
    seconds: float = 0.0

    def summary(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "forward": f"{self.forward_matched}/{self.forward_checked}",
            "grads": f"{self.grads_matched}/{self.grads_checked}",
            "opaque_ops": len(self.opaque_ops),
            "dispatch_matched": self.dispatch_matched,
            "replay_peak_bytes": self.replay_peak_bytes,
            "seconds": round(self.seconds, 6),
        }


def closure_freevars(fn: Callable) -> Dict[str, object]:
    """Free variables of a backward closure, by name.

    The engine never passes op attributes (axes, indices, masks) to
    ``_make_child``; they live only in the closure.  This is the one
    place the IR recovers them.
    """
    code = getattr(fn, "__code__", None)
    cells = getattr(fn, "__closure__", None)
    if code is None or cells is None:
        return {}
    return {name: cell.cell_contents
            for name, cell in zip(code.co_freevars, cells)}


def engine_topo_order(graph: IRGraph) -> List[int]:
    """The exact node order ``Tensor.backward`` would visit.

    Replicates the engine's DFS (same stack discipline, parents pushed
    in forward order) over uids so the replayed float-accumulation
    order is identical to eager.
    """
    if graph.root is None:
        return []
    topo: List[int] = []
    visited = set()
    stack = [(graph.root, False)]
    while stack:
        uid, processed = stack.pop()
        if processed:
            topo.append(uid)
            continue
        if uid in visited:
            continue
        visited.add(uid)
        stack.append((uid, True))
        for parent in graph.node(uid).parents:
            if parent not in visited:
                stack.append((parent, False))
    return topo


# ---------------------------------------------------------------------- #
# Forward op semantics (mirror of repro.nn.tensor, attribute-recovered)
# ---------------------------------------------------------------------- #
def _sigmoid_stable(a: np.ndarray) -> np.ndarray:
    # Byte-identical to Tensor.sigmoid: exp only sees non-positive args.
    positive = a >= 0
    exp_neg = np.exp(-np.abs(a))
    return np.where(positive, 1.0 / (1.0 + exp_neg),
                    exp_neg / (1.0 + exp_neg))


def _replay_clip_min(p0: np.ndarray, fv: Dict, recorded: np.ndarray):
    # `minimum` is not a free variable (only `mask` is); recover it from
    # any clipped position of the recorded output.
    mask = fv["mask"]
    clipped = ~mask
    if clipped.any():
        minimum = recorded[clipped].flat[0]
        return np.maximum(p0, minimum)
    return p0.copy()   # nothing clipped: max(a, m) == a elementwise


def _replay_forward(node: IRNode, p: List[np.ndarray], fv: Dict,
                    recorded: np.ndarray) -> Optional[np.ndarray]:
    """Recompute one op from parent values; None = not reconstructable."""
    op = node.op
    if op == "add":
        return p[0] + p[1]
    if op == "sub":
        return p[0] - p[1]
    if op == "mul":
        return p[0] * p[1]
    if op == "div":
        return p[0] / p[1]
    if op == "neg":
        return -p[0]
    if op == "pow":
        return p[0] ** fv["exponent"]
    if op == "matmul":
        return p[0] @ p[1]
    if op == "transpose":
        # forward axes == argsort of the stored inverse permutation
        return np.transpose(p[0], np.argsort(fv["inverse"]))
    if op == "swapaxes":
        return np.swapaxes(p[0], fv["axis1"], fv["axis2"])
    if op == "reshape":
        return p[0].reshape(node.shape)
    if op == "sum":
        return p[0].sum(axis=fv["axis"], keepdims=fv["keepdims"])
    if op == "mean":
        return p[0].mean(axis=fv["axis"], keepdims=fv["keepdims"])
    if op == "max":
        return p[0].max(axis=fv["axis"], keepdims=fv["keepdims"])
    if op == "exp":
        return np.exp(p[0])
    if op == "log":
        return np.log(p[0])
    if op == "sqrt":
        return np.sqrt(p[0])
    if op == "tanh":
        return np.tanh(p[0])
    if op == "sigmoid":
        return _sigmoid_stable(p[0])
    if op == "relu":
        return p[0] * (p[0] > 0)
    if op == "abs":
        return np.abs(p[0])
    if op == "clip_min":
        return _replay_clip_min(p[0], fv, recorded)
    if op == "getitem":
        return p[0][fv["index"]]
    if op == "take":
        return np.take(p[0], fv["indices"], axis=fv["axis"])
    if op == "concatenate":
        return np.concatenate(p, axis=fv["axis"])
    if op == "stack":
        return np.stack(p, axis=fv["axis"])
    if op == "where":
        return np.where(fv["condition"], p[0], p[1])
    return None


def _bitwise_equal(a: Optional[np.ndarray], b: Optional[np.ndarray]) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return a.shape == b.shape and a.dtype == b.dtype and \
        a.tobytes() == b.tobytes()


# ---------------------------------------------------------------------- #
# The executor
# ---------------------------------------------------------------------- #
def replay(capture: StepCapture, max_mismatches: int = 10) -> ReplayResult:
    """Re-execute the captured step and verify it bit-for-bit."""
    graph = capture.graph
    if graph.overflowed:
        raise ValueError(
            "capture overflowed its op budget; the window is incomplete "
            "and cannot be replayed"
        )
    if graph.root is None:
        raise ValueError("capture has no backward root")
    result = ReplayResult()
    start = time.perf_counter()

    # ----- forward: recompute in dependency order, free at last use ----
    consumers = graph.consumers()
    remaining = {uid: len(consumers[uid]) for uid in consumers}
    values: Dict[int, np.ndarray] = {}
    live_bytes = 0
    freevars = {uid: closure_freevars(fn)
                for uid, fn in capture.backwards.items()}

    def note_mismatch(label: str) -> None:
        result.ok = False
        if len(result.mismatches) < max_mismatches:
            result.mismatches.append(label)

    for uid in graph.topo_order():
        node = graph.node(uid)
        if node.kind != "op":
            values[uid] = capture.source_data[uid]
            continue
        recorded = capture.tensors[uid].data
        parents = [values[p] for p in node.parents]
        out = _replay_forward(node, parents, freevars.get(uid, {}), recorded)
        if out is None:
            result.opaque_ops.append(node.op)
            out = recorded
        else:
            result.forward_checked += 1
            if _bitwise_equal(np.asarray(out), recorded):
                result.forward_matched += 1
            else:
                note_mismatch(f"forward {node.label()} [{node.module}]")
        values[uid] = np.asarray(out)
        live_bytes += values[uid].nbytes
        result.replay_peak_bytes = max(result.replay_peak_bytes, live_bytes)
        for parent in node.parents:
            remaining[parent] -= 1
            if remaining[parent] == 0 and graph.node(parent).kind == "op":
                live_bytes -= values[parent].nbytes
                del values[parent]

    # ----- backward: simulate the engine's walk with the captured
    # closures, over snapshot data (parameters may have been stepped) --
    saved_data: Dict[int, np.ndarray] = {}
    for node in graph.source_nodes():
        t = capture.tensors[node.uid]
        saved_data[node.uid] = t.data
        t.data = capture.source_data[node.uid]
    replayed_dispatch: List[int] = []
    leaf_final: Dict[int, np.ndarray] = {}
    try:
        grads: Dict[int, np.ndarray] = {graph.root: capture.seed_grad}
        for uid in reversed(engine_topo_order(graph)):
            node_grad = grads.pop(uid, None)
            if node_grad is None:
                continue
            node = graph.node(uid)
            if node.requires_grad and not node.has_backward:
                before = capture.grads_before.get(uid)
                if before is None:
                    leaf_final[uid] = np.array(
                        node_grad, dtype=DEFAULT_DTYPE, copy=True)
                else:
                    acc = before.copy()
                    acc += node_grad
                    leaf_final[uid] = acc
            if node.has_backward:
                replayed_dispatch.append(uid)
                contributions = capture.backwards[uid](node_grad)
                for parent_uid, contribution in zip(node.parents,
                                                    contributions):
                    parent = graph.node(parent_uid)
                    if contribution is None or not (
                        parent.requires_grad or parent.has_backward
                    ):
                        continue
                    if parent_uid in grads:
                        grads[parent_uid] = grads[parent_uid] + contribution
                    else:
                        grads[parent_uid] = contribution
    finally:
        for uid, data in saved_data.items():
            capture.tensors[uid].data = data

    if replayed_dispatch != graph.dispatch_order:
        result.dispatch_matched = False
        note_mismatch(
            f"dispatch order: replayed {len(replayed_dispatch)} ops, "
            f"recorded {len(graph.dispatch_order)}"
        )

    # ----- verify final leaf gradients against the capture snapshot ---
    for uid, expected in sorted(capture.grads_after.items()):
        result.grads_checked += 1
        got = leaf_final.get(uid, capture.grads_before.get(uid))
        if _bitwise_equal(got, expected):
            result.grads_matched += 1
        else:
            note_mismatch(f"grad {graph.node(uid).label()}")

    result.seconds = time.perf_counter() - start
    return result
