"""Synthetic benchmark generators for DBP15K / SRPRS / OpenEA analogues.

Real benchmark downloads are unavailable offline; these generators
reproduce each benchmark's published traits (Table I statistics, Table VI
degree distributions, name/numeric behaviours) — see DESIGN.md.
"""

from .dbp15k import DBP15K_LANGS, DBP15KScale, build_dbp15k
from .openea import OPENEA_DATASETS, OpenEAScale, build_openea
from .registry import available_datasets, build_dataset
from .sampling import degree_preserving_sample, downsample_pair, induced_subpair
from .srprs import SRPRS_DATASETS, SRPRSScale, build_srprs
from .synthesis import (
    EntitySpec,
    ViewConfig,
    World,
    WorldConfig,
    derive_view,
    generate_pair,
    generate_world,
)
from .translation import ENGLISH, Language, make_lexicon, syllable_word

__all__ = [
    "WorldConfig", "ViewConfig", "World", "EntitySpec",
    "generate_world", "derive_view", "generate_pair",
    "Language", "ENGLISH", "make_lexicon", "syllable_word",
    "build_dbp15k", "DBP15K_LANGS", "DBP15KScale",
    "build_srprs", "SRPRS_DATASETS", "SRPRSScale",
    "build_openea", "OPENEA_DATASETS", "OpenEAScale",
    "build_dataset", "available_datasets",
    "induced_subpair", "downsample_pair", "degree_preserving_sample",
]
