"""OpenEA D-W-like dataset generators (sparse + opaque Wikidata names).

OpenEA's D_W_15K_V1 / D_W_100K_V1 pair DBpedia with Wikidata.  Their two
challenge traits, called out explicitly by the paper:

1. **No literal name matching** — Wikidata entities are named by opaque
   ``Q...`` identifiers, so name-dependent methods (BERT-INT) collapse to
   ~0 Hits@1.
2. **Sparse relations and numeric-heavy attributes** — "about 40% of
   attribute values ... are numerical", and "99.6% of the to-be-aligned
   entities in the test set have no matching neighbors".

Generated analogue: the Wikidata side uses ``name_style='id'`` (URIs and
name attributes are Q-ids), relation keeping is very low, numeric extra
attributes are frequent, and comments are retained so attribute semantics
remain the only reliable bridge — which is why SDEA still works here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kg.pair import KGPair
from .synthesis import ViewConfig, WorldConfig, generate_pair

OPENEA_DATASETS = ("d_w_15k_v1", "d_w_100k_v1", "d_w_15k_v2")


@dataclass(frozen=True)
class OpenEAScale:
    """Scale knobs; the 100k variant multiplies these by ``large_factor``."""

    n_persons: int = 160
    n_places: int = 60
    n_clubs: int = 36
    n_countries: int = 12
    large_factor: int = 3


def build_openea(dataset: str = "d_w_15k_v1", seed: int = 47,
                 scale: OpenEAScale | None = None) -> KGPair:
    """Generate one OpenEA D-W-like pair."""
    if dataset not in OPENEA_DATASETS:
        raise ValueError(
            f"unknown OpenEA dataset {dataset!r}; expected one of {OPENEA_DATASETS}"
        )
    scale = scale or OpenEAScale()
    factor = scale.large_factor if dataset == "d_w_100k_v1" else 1
    # V2 is OpenEA's dense variant: higher edge keeping and overlapping
    # edge sets (phase 0 on both sides), same opaque Wikidata names.
    dense = dataset.endswith("_v2")
    rel_keep = 0.75 if dense else 0.5
    phase = 0.0 if dense else 0.5
    world = WorldConfig(
        n_persons=scale.n_persons * factor,
        n_places=scale.n_places * factor,
        n_clubs=scale.n_clubs * factor,
        n_countries=scale.n_countries * max(1, factor // 2),
        extra_person_links=2,
        comment_sentences=2,
        seed=seed + (1 if factor > 1 else 0),
    )
    view_dbp = ViewConfig(
        side=1,
        rel_keep_prob=rel_keep,
        attr_keep_prob=0.8,
        name_style="plain",
        comment_prob=0.5,
        fold_longtail_prob=0.3,
        numeric_extra_prob=0.5,
        type_edges=False,
        seed=seed + 11,
    )
    view_wd = ViewConfig(
        side=2,
        rel_keep_prob=rel_keep,
        edge_phase=phase,
        attr_keep_prob=0.8,
        name_style="id",
        comment_prob=0.6,
        fold_longtail_prob=0.3,
        numeric_extra_prob=0.7,
        type_edges=False,
        seed=seed + 29,
    )
    return generate_pair(world, view_dbp, view_wd, name=f"openea-{dataset}")
