"""Synthetic world generation and KG-view derivation.

The generator reproduces the *traits* that drive the paper's evaluation
rather than copying any particular dump:

1. A **world** of ground-truth entities (persons, places, clubs,
   countries) plus a handful of **general-concept hubs** (``person``,
   ``settlement`` ...) that accumulate very high degree — the noise source
   the paper's attention mechanism must learn to down-weight.
2. Two **views** of the world, one per KG, each independently dropping
   relations/attributes (schema + density heterogeneity), renaming
   attributes, translating common words into a pseudo-language, perturbing
   names, and optionally folding a long-tail entity's facts into a single
   long ``comment`` value — the exact phenomenon of Fig. 2's
   ⟨Fabian_Bruskewitz⟩ example.

Every linked entity pair shares the underlying facts, so semantic
associations exist for a model to discover even when structure is absent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..kg.graph import KnowledgeGraph
from ..kg.pair import KGPair
from .translation import ENGLISH, Language, _stable_seed, transliterate_word
from .words import COMMON_WORDS, TYPE_WORDS, proper_name, proper_word


@dataclass
class EntitySpec:
    """Ground-truth entity in the synthetic world."""

    index: int
    etype: str                        # person | place | club | country | concept
    name_words: List[str]             # protected proper-noun tokens
    attrs: Dict[str, str] = field(default_factory=dict)
    relations: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def display_name(self) -> str:
        return " ".join(self.name_words)


@dataclass
class World:
    """A generated world: entities plus the concept-hub index range."""

    entities: List[EntitySpec]
    concept_indices: List[int]

    def __len__(self) -> int:
        return len(self.entities)


@dataclass(frozen=True)
class WorldConfig:
    """Controls world size and composition."""

    n_persons: int = 60
    n_places: int = 25
    n_clubs: int = 15
    n_countries: int = 8
    extra_person_links: int = 2      # extra person→person "knows" edges (dense)
    comment_sentences: int = 2
    seed: int = 23


@dataclass(frozen=True)
class ViewConfig:
    """Controls how one KG view is derived from the world.

    Attributes
    ----------
    side:
        1 or 2 — selects the URI namespace and attribute schema variant.
    language:
        Pseudo-language for common words ("english" = identity).
    rel_keep_prob:
        Probability of keeping each world relation (density control).
    attr_keep_prob:
        Probability of keeping each structured attribute.
    name_style:
        ``plain`` (exact names), ``noisy`` (abbreviations/format noise) or
        ``id`` (opaque Wikidata-style ``Q...`` identifiers, no name signal).
    comment_prob:
        Probability an entity carries a long textual ``comment``.
    fold_longtail_prob:
        For entities that end up long-tail (few kept relations), the
        probability that their structured attributes are *replaced* by the
        comment (Fig. 2's single-attribute case).
    numeric_extra_prob:
        Probability of adding opaque numeric attributes (identifiers,
        dates) — the D-W error-analysis trait.
    name_noise:
        Per-word probability of transliteration-style perturbation of the
        *name attribute* (cross-script romanisation differences).  The
        protected words inside comments keep their canonical form, as
        romanised mentions in real article text do.
    edge_phase:
        Controls cross-KG triple overlap.  Every world edge carries a
        stable uniform value u; a view keeps the edge iff
        ``(u - edge_phase) mod 1 < rel_keep_prob``.  Two views with the
        same phase keep maximally overlapping edge sets (dense matching
        neighbors, DBP15K-style); phases ``rel_keep_prob`` apart keep
        nearly disjoint sets (OpenEA D-W's "99.6% of test pairs have no
        matching neighbors").
    type_edges:
        Whether entities link to their general-concept hub.
    seed:
        View-local randomness (independent of the world seed).
    """

    side: int = 1
    language: Language = ENGLISH
    rel_keep_prob: float = 0.9
    attr_keep_prob: float = 0.9
    name_style: str = "plain"
    comment_prob: float = 0.5
    fold_longtail_prob: float = 0.0
    numeric_extra_prob: float = 0.0
    name_noise: float = 0.0
    name_noise_strength: float = 1.0
    edge_phase: float = 0.0
    type_edges: bool = True
    seed: int = 101

    def __post_init__(self) -> None:
        if self.side not in (1, 2):
            raise ValueError("side must be 1 or 2")
        if self.name_style not in ("plain", "noisy", "id"):
            raise ValueError(f"unknown name_style: {self.name_style}")


# Attribute schema per side: canonical fact key → side-specific name.
_ATTR_SCHEMA = {
    1: {
        "name": "name",
        "birthYear": "birthYear",
        "population": "population",
        "foundedYear": "foundedYear",
        "comment": "abstract",
    },
    # Side 2 renames some attributes but shares others (birthYear,
    # population) — real cross-KG schemas overlap partially, which is what
    # JAPE's and GCN-Align's attribute-correlation channels exploit.
    2: {
        "name": "label",
        "birthYear": "birthYear",
        "population": "population",
        "foundedYear": "established",
        "comment": "comment",
    },
}


def generate_world(config: WorldConfig,
                   rng: Optional[np.random.Generator] = None) -> World:
    """Generate the ground-truth world.

    ``rng`` lets a caller supply its own stream (e.g. one spawned per
    shard); by default a fresh generator is seeded from ``config.seed``
    so repeated calls are bitwise identical and never touch shared
    module-level RNG state.
    """
    if rng is None:
        rng = np.random.default_rng(config.seed)
    entities: List[EntitySpec] = []

    def new_entity(etype: str, name_words: List[str]) -> EntitySpec:
        spec = EntitySpec(index=len(entities), etype=etype, name_words=name_words)
        entities.append(spec)
        return spec

    concepts: Dict[str, EntitySpec] = {}
    for etype in ("person", "place", "club", "country"):
        concepts[etype] = new_entity("concept", [TYPE_WORDS[etype][0]])
    concept_indices = [c.index for c in concepts.values()]

    countries = []
    for _ in range(config.n_countries):
        country = new_entity("country", [proper_word(rng)])
        country.attrs["comment"] = (
            f"{country.display_name} is a country in the world known for "
            f"its large historic region ."
        )
        countries.append(country)
    places = []
    for _ in range(config.n_places):
        place = new_entity("place", [proper_word(rng)])
        country = countries[rng.integers(len(countries))]
        place.relations.append(("country", country.index))
        population = int(rng.integers(5, 9000)) * 1000
        place.attrs["population"] = str(population)
        place.attrs["comment"] = (
            f"{place.display_name} is a city in {country.display_name} "
            f"with a population of {population} people ."
        )
        places.append(place)
    clubs = []
    for _ in range(config.n_clubs):
        club = new_entity("club", [proper_word(rng), "FC"])
        home = places[rng.integers(len(places))]
        club.relations.append(("locatedIn", home.index))
        founded = int(rng.integers(1860, 2000))
        club.attrs["foundedYear"] = str(founded)
        club.attrs["comment"] = (
            f"{club.display_name} is a professional football club founded "
            f"in {founded} and located in {home.display_name} ."
        )
        clubs.append(club)

    persons = []
    for _ in range(config.n_persons):
        person = new_entity("person", proper_name(rng, 2))
        birth_place = places[rng.integers(len(places))]
        nationality = countries[rng.integers(len(countries))]
        person.relations.append(("birthPlace", birth_place.index))
        person.relations.append(("nationality", nationality.index))
        n_clubs = int(rng.integers(1, 3))
        for club in rng.choice(len(clubs), size=n_clubs, replace=False):
            person.relations.append(("memberOf", clubs[club].index))
        person.attrs["birthYear"] = str(int(rng.integers(1900, 2004)))
        person.attrs["comment"] = _person_comment(
            person, entities, rng, config.comment_sentences
        )
        persons.append(person)

    # Dense-mode extra person→person edges ("knows"), raising degrees.
    for person in persons:
        for _ in range(config.extra_person_links):
            other = persons[rng.integers(len(persons))]
            if other.index != person.index:
                person.relations.append(("knows", other.index))

    # name attribute and type edge for everyone except concept hubs
    for spec in entities:
        if spec.etype == "concept":
            continue
        spec.attrs["name"] = spec.display_name
        spec.relations.append(("type", concepts[spec.etype].index))

    return World(entities=entities, concept_indices=concept_indices)


def _person_comment(person: EntitySpec, entities: List[EntitySpec],
                    rng: np.random.Generator, sentences: int) -> str:
    """Compose the long textual description mentioning the person's facts."""
    facts = dict()
    for rel, target in person.relations:
        facts.setdefault(rel, entities[target].display_name)
    parts = [
        f"{person.display_name} was born in "
        f"{facts.get('birthPlace', 'an old town')} in "
        f"{person.attrs.get('birthYear', 'the past')}"
    ]
    if sentences >= 2:
        parts.append(
            f"{person.name_words[-1]} is a famous professional player from "
            f"{facts.get('nationality', 'a small country')} and plays for "
            f"{facts.get('memberOf', 'a local club')}"
        )
    if sentences >= 3:
        glue = " ".join(
            str(w) for w in rng.choice(COMMON_WORDS, size=8, replace=True)
        )
        parts.append(f"the career of {person.name_words[-1]} {glue}")
    return " . ".join(parts) + " ."


# ---------------------------------------------------------------------- #
# View derivation
# ---------------------------------------------------------------------- #
def derive_view(world: World, config: ViewConfig,
                name: Optional[str] = None,
                rng: Optional[np.random.Generator] = None) -> KnowledgeGraph:
    """Derive one KG view of a world according to ``config``.

    As with :func:`generate_world`, ``rng`` overrides the default
    config-seeded stream; the default is side-salted so the two views
    of a pair draw from independent deterministic streams.
    """
    if rng is None:
        rng = np.random.default_rng(config.seed + 7919 * config.side)
    schema = _ATTR_SCHEMA[config.side]
    graph = KnowledgeGraph(name=name or f"kg{config.side}")
    uris = [_entity_uri(spec, config) for spec in world.entities]

    for spec in world.entities:
        graph.add_entity(uris[spec.index])

    # Relations first so we know who is long-tail before placing attrs.
    # Edge keeping uses per-edge stable uniforms shared by both views, so
    # that edge_phase controls the cross-KG triple overlap (see class
    # docstring).
    kept_degree = {spec.index: 0 for spec in world.entities}
    for spec in world.entities:
        for occurrence, (rel, target) in enumerate(spec.relations):
            if rel == "type":
                if not config.type_edges:
                    continue
            else:
                u = _edge_uniform(spec.index, rel, target, occurrence)
                if (u - config.edge_phase) % 1.0 >= config.rel_keep_prob:
                    continue
            graph.add_rel_triple(uris[spec.index], rel, uris[target])
            kept_degree[spec.index] += 1
            kept_degree[target] += 1

    protected = {w.lower() for spec in world.entities for w in spec.name_words}
    for spec in world.entities:
        if spec.etype == "concept":
            graph.add_attr_triple(
                uris[spec.index], schema["name"],
                _concept_name(spec, config),
            )
            continue
        is_longtail = kept_degree[spec.index] <= 3
        fold = (
            is_longtail
            and "comment" in spec.attrs
            and rng.random() < config.fold_longtail_prob
        )
        emitted_any = False
        for key, value in spec.attrs.items():
            if key == "comment":
                continue
            if fold:
                continue
            if key != "name" and rng.random() > config.attr_keep_prob:
                continue
            rendered = _render_value(key, value, spec, config, rng, protected)
            if rendered is None:
                continue
            graph.add_attr_triple(uris[spec.index], schema.get(key, key), rendered)
            emitted_any = True
        comment = spec.attrs.get("comment")
        emit_comment = comment is not None and (
            fold or rng.random() < config.comment_prob
        )
        if emit_comment:
            translated = config.language.translate_text(comment, protected)
            graph.add_attr_triple(uris[spec.index], schema["comment"], translated)
            emitted_any = True
        if not emitted_any and not config.name_style == "id":
            # guarantee at least the name so Algorithm 1 has a value
            graph.add_attr_triple(
                uris[spec.index], schema["name"],
                _styled_name(spec, config, rng),
            )
        if config.numeric_extra_prob and rng.random() < config.numeric_extra_prob:
            graph.add_attr_triple(
                uris[spec.index], "identifier",
                str(int(rng.integers(10**5, 10**8))),
            )
    return graph


def _edge_uniform(source: int, relation: str, target: int,
                  occurrence: int) -> float:
    """Stable uniform in [0, 1) identifying a world edge."""
    seed = _stable_seed("edge", str(source), relation, str(target),
                        str(occurrence))
    return (seed % (2**32)) / float(2**32)


def _entity_uri(spec: EntitySpec, config: ViewConfig) -> str:
    if config.name_style == "id":
        # Opaque Wikidata-style identifier; deterministic per entity+side.
        return f"http://side{config.side}/entity/Q{100000 + spec.index}"
    # URI local names follow the view's script: a cross-script side uses
    # transliterated words (zh.dbpedia URIs are not literal matches for
    # en.dbpedia ones).  Deterministic — no rng involved.
    words = spec.name_words
    if config.name_noise > 0:
        words = [
            transliterate_word(w, config.language.name,
                               config.name_noise_strength)
            for w in words
        ]
    # Disambiguation suffix keeps URIs unique; it is side-shifted so the
    # digits themselves carry no cross-KG alignment signal.
    suffix = spec.index if config.side == 1 else spec.index + 50021
    local = "_".join(words) + f"_{suffix}"
    return f"http://side{config.side}/resource/{local}"


def _concept_name(spec: EntitySpec, config: ViewConfig) -> str:
    """Concept hubs use side-specific synonyms (person vs people)."""
    synonyms = None
    for words in TYPE_WORDS.values():
        if spec.name_words[0] == words[0]:
            synonyms = words
            break
    if synonyms is None:
        return spec.display_name
    word = synonyms[0] if config.side == 1 else synonyms[1]
    return config.language.translate_word(word) if not config.language.is_identity else word


def _styled_name(spec: EntitySpec, config: ViewConfig,
                 rng: np.random.Generator) -> str:
    if config.name_style == "id":
        return f"Q{100000 + spec.index}"
    words = list(spec.name_words)
    if config.name_noise > 0:
        words = [
            transliterate_word(w, config.language.name,
                               config.name_noise_strength)
            if rng.random() < config.name_noise else w
            for w in words
        ]
    name = " ".join(words)
    if config.name_style == "noisy" and len(words) > 1:
        roll = rng.random()
        if roll < 0.25:  # abbreviate the first word: C. Ronaldo
            name = f"{words[0][0]}. " + " ".join(words[1:])
        elif roll < 0.4:  # reorder: Ronaldo, Cristiano
            name = f"{' '.join(words[1:])} {words[0]}"
    return name


def _render_value(key: str, value: str, spec: EntitySpec, config: ViewConfig,
                  rng: np.random.Generator, protected: set) -> Optional[str]:
    if key == "name":
        if config.name_style == "id":
            return f"Q{100000 + spec.index}"
        return _styled_name(spec, config, rng)
    if key == "population":
        # Different precision per side (heterogeneous numerics).
        number = int(value)
        if config.side == 2 and rng.random() < 0.5:
            number = int(round(number, -3))
        return str(number)
    return value


# ---------------------------------------------------------------------- #
# Pair assembly
# ---------------------------------------------------------------------- #
def generate_pair(world_config: WorldConfig, view1: ViewConfig,
                  view2: ViewConfig, name: str = "pair",
                  include_concepts_in_links: bool = False,
                  rng: Optional[np.random.Generator] = None) -> KGPair:
    """Generate a world and derive a linked KG pair from it.

    When ``rng`` is given, the world and both views draw sequentially
    from that single stream (deterministic given the generator's
    state); when omitted, each stage seeds its own generator from its
    config so the result is bitwise stable across calls and threads.
    """
    if view1.side == view2.side:
        view2 = replace(view2, side=3 - view1.side)
    world = generate_world(world_config, rng=rng)
    kg1 = derive_view(world, view1, name=f"{name}-1", rng=rng)
    kg2 = derive_view(world, view2, name=f"{name}-2", rng=rng)

    uris1 = [_entity_uri(s, view1) for s in world.entities]
    uris2 = [_entity_uri(s, view2) for s in world.entities]
    concept_set = set(world.concept_indices)
    links = []
    for spec in world.entities:
        if spec.index in concept_set and not include_concepts_in_links:
            continue
        links.append((kg1.entity_id(uris1[spec.index]),
                      kg2.entity_id(uris2[spec.index])))
    return KGPair(kg1=kg1, kg2=kg2, links=links, name=name)
