"""DBP15K-like dataset generators (dense, cross-lingual).

DBP15K pairs Chinese/Japanese/French DBpedia with English DBpedia; its
condensed version samples *popular* (high-degree) entities, so the graphs
are dense (Table VI: <30% of entities have degree ≤ 3) and entity names
are literally similar across sides (romanised forms survive).

The generated analogue: dense relation keeping, extra person links,
pseudo-language translation on the non-English side, lightly noisy names.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kg.pair import KGPair
from .synthesis import ViewConfig, WorldConfig, generate_pair
from .translation import Language

DBP15K_LANGS = ("zh_en", "ja_en", "fr_en")


@dataclass(frozen=True)
class DBP15KScale:
    """Scale knobs for a DBP15K-like pair (defaults are CPU-bench sized)."""

    n_persons: int = 160
    n_places: int = 60
    n_clubs: int = 36
    n_countries: int = 12


def build_dbp15k(language_pair: str = "zh_en", seed: int = 23,
                 scale: DBP15KScale | None = None) -> KGPair:
    """Generate one DBP15K-like pair, e.g. ``zh_en``.

    The non-English side gets a pseudo-language translation of common
    words; both sides are dense; names are noisy but literal-similar.
    """
    if language_pair not in DBP15K_LANGS:
        raise ValueError(
            f"unknown DBP15K pair {language_pair!r}; expected one of {DBP15K_LANGS}"
        )
    scale = scale or DBP15KScale()
    foreign = language_pair.split("_")[0]
    # Per-pair seed offsets so zh/ja/fr worlds differ.
    offset = DBP15K_LANGS.index(language_pair)
    # Cross-script pairs (ZH/JA) have far less literal name overlap than
    # FR-EN — the reason BERT-INT tops FR-EN but trails SDEA on ZH/JA.
    name_noise = 0.15 if foreign == "fr" else 0.9
    noise_strength = 1.0 if foreign == "fr" else 2.0
    world = WorldConfig(
        n_persons=scale.n_persons,
        n_places=scale.n_places,
        n_clubs=scale.n_clubs,
        n_countries=scale.n_countries,
        extra_person_links=1,
        comment_sentences=2,
        seed=seed + offset,
    )
    view_foreign = ViewConfig(
        side=1,
        language=Language(foreign),
        rel_keep_prob=0.6,
        attr_keep_prob=0.9,
        name_style="noisy",
        comment_prob=0.75,
        name_noise=name_noise,
        name_noise_strength=noise_strength,
        seed=seed + 11 + offset,
    )
    view_english = ViewConfig(
        side=2,
        rel_keep_prob=0.64,
        attr_keep_prob=0.9,
        name_style="plain",
        comment_prob=0.75,
        seed=seed + 29 + offset,
    )
    return generate_pair(world, view_foreign, view_english,
                         name=f"dbp15k-{language_pair}")
