"""Word pools for the synthetic world generator.

``COMMON_WORDS`` is the glue vocabulary of the canonical (English) side —
these are the words a :class:`~repro.datasets.translation.Language`
translates.  Proper-noun words (entity names) are generated per-world from
syllables and are *protected* from translation, mirroring how romanised
names survive across real DBpedia language editions.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .translation import syllable_word

COMMON_WORDS: tuple[str, ...] = (
    "the", "a", "an", "is", "was", "born", "in", "and", "of", "for",
    "plays", "played", "team", "club", "city", "town", "country", "famous",
    "professional", "footballer", "player", "person", "people", "known",
    "as", "who", "from", "member", "national", "located", "founded",
    "population", "capital", "region", "district", "north", "south",
    "east", "west", "large", "small", "old", "new", "first", "second",
    "league", "season", "career", "began", "joined", "later", "also",
    "works", "worked", "bishop", "church", "catholic", "roman", "diocese",
    "served", "since", "until", "retired", "author", "writer", "singer",
    "album", "band", "music", "river", "mountain", "lake", "near",
    "borders", "historic", "century", "university", "school", "studied",
    "at", "with", "his", "her", "their", "life", "early", "world",
    "championship", "cup", "won", "award", "best", "most", "one",
    "many", "several", "other", "between", "during", "after", "before",
)

TYPE_WORDS = {
    "person": ("person", "people", "human"),
    "place": ("settlement", "place", "location"),
    "club": ("organization", "club", "organisation"),
    "country": ("country", "state", "nation"),
}


def proper_word(rng: np.random.Generator) -> str:
    """A capitalised proper-noun pseudo-word."""
    return syllable_word(rng, int(rng.integers(2, 4))).capitalize()


def proper_name(rng: np.random.Generator, words: int = 2) -> List[str]:
    """A multi-word proper name (e.g. a person's full name)."""
    return [proper_word(rng) for _ in range(words)]
