"""Dataset registry: name → builder, covering every benchmark in Table I."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..kg.pair import KGPair
from .dbp15k import DBP15K_LANGS, build_dbp15k
from .openea import OPENEA_DATASETS, build_openea
from .srprs import SRPRS_DATASETS, build_srprs

Builder = Callable[..., KGPair]

_REGISTRY: Dict[str, Builder] = {}


def _register() -> None:
    for lang in DBP15K_LANGS:
        _REGISTRY[f"dbp15k/{lang}"] = (
            lambda lang=lang, **kw: build_dbp15k(lang, **kw)
        )
    for name in SRPRS_DATASETS:
        _REGISTRY[f"srprs/{name}"] = (
            lambda name=name, **kw: build_srprs(name, **kw)
        )
    for name in OPENEA_DATASETS:
        _REGISTRY[f"openea/{name}"] = (
            lambda name=name, **kw: build_openea(name, **kw)
        )


_register()


def available_datasets() -> List[str]:
    """All registered dataset names."""
    return sorted(_REGISTRY)


def build_dataset(name: str, **kwargs) -> KGPair:
    """Build a dataset by registry name, e.g. ``dbp15k/zh_en``."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None
    return builder(**kwargs)
