"""Synthetic languages for cross-lingual KG pairs.

DBP15K pairs a non-English DBpedia (ZH/JA/FR) with English DBpedia.  What
matters for an alignment model is that *common* vocabulary differs across
the two graphs while proper names, numbers and dates keep (mostly) shared
romanised surface forms — in real DBpedia a Chinese article about
Cristiano Ronaldo still contains "Ronaldo", "1985", "Real Madrid".

A :class:`Language` therefore translates dictionary words through a
deterministic pseudo-lexicon (hash-seeded syllable words) but leaves
proper-noun tokens and numerics intact, optionally applying light
morphological noise.  This reproduces the signal structure the paper's
attribute module exploits: shared anchors (names/numbers) plus
learnable cross-lingual token correspondences.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


def syllable_word(rng: np.random.Generator, syllables: int) -> str:
    """Compose a pronounceable pseudo-word from CV syllables."""
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(list(_CONSONANTS)) + rng.choice(list(_VOWELS)))
    return "".join(parts)


def _stable_seed(*parts: str) -> int:
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class Language:
    """A deterministic pseudo-language identified by a name.

    ``english`` is the identity language.  Any other name produces a
    lexicon where each common word maps to a stable pseudo-word; the
    mapping depends only on ``(language name, word)`` so it is consistent
    across runs, entities and datasets.
    """

    name: str

    @property
    def is_identity(self) -> bool:
        return self.name == "english"

    def translate_word(self, word: str) -> str:
        """Translate one lowercase word (identity for 'english')."""
        if self.is_identity:
            return word
        rng = np.random.default_rng(_stable_seed(self.name, word))
        syllables = max(2, min(4, (len(word) + 2) // 3))
        return syllable_word(rng, syllables)

    def translate_text(self, text: str, protected: Iterable[str] = ()) -> str:
        """Translate a text, preserving protected tokens and numerics.

        Parameters
        ----------
        text:
            Input text (already lowercase or mixed; handled tokenwise).
        protected:
            Tokens (lowercased) that must keep their surface form — proper
            names in practice.
        """
        protected_set = {p.lower() for p in protected}
        out: List[str] = []
        for token in str(text).split():
            bare = token.lower()
            if (
                self.is_identity
                or bare in protected_set
                or any(ch.isdigit() for ch in bare)
            ):
                out.append(token)
            else:
                out.append(self.translate_word(bare))
        return " ".join(out)


ENGLISH = Language("english")

_VOWEL_SWAP = {"a": "e", "e": "i", "i": "a", "o": "u", "u": "o"}


def transliterate_word(word: str, language_name: str,
                       strength: float = 1.0) -> str:
    """Deterministic romanisation-style perturbation of a proper noun.

    Models how entity names differ across language editions while staying
    literally *similar* (e.g. "Cristiano" vs "Cristano"): vowels shift,
    an occasional letter drops or doubles.  ``strength`` scales how many
    positions are touched; perturbation depends only on
    ``(language_name, word)``.
    """
    if not word:
        return word
    rng = np.random.default_rng(_stable_seed("xlit", language_name, word))
    chars = list(word)
    n_edits = max(1, int(round(strength * len(chars) / 4)))
    for _ in range(n_edits):
        pos = int(rng.integers(len(chars)))
        ch = chars[pos].lower()
        roll = rng.random()
        if ch in _VOWEL_SWAP and roll < 0.6:
            repl = _VOWEL_SWAP[ch]
            chars[pos] = repl.upper() if chars[pos].isupper() else repl
        elif roll < 0.8 and len(chars) > 3:
            del chars[pos]
        else:
            chars.insert(pos, ch if ch.isalpha() else "h")
    return "".join(chars)


def make_lexicon(words: Iterable[str], language: Language) -> Dict[str, str]:
    """Materialise the (word → translation) mapping for inspection/tests."""
    return {word: language.translate_word(word) for word in words}
