"""Subgraph sampling over KG pairs.

OpenEA's datasets are produced by *iterative degree-based sampling* from
the full KBs so the samples keep realistic degree distributions.  This
module provides the equivalent operations over in-memory pairs:

* :func:`induced_subpair` — restrict a pair to a chosen set of linked
  entities, keeping triples whose endpoints both survive;
* :func:`downsample_pair` — uniform link subsampling;
* :func:`degree_preserving_sample` — IDS-style iterative sampling that
  preferentially keeps entities whose removal would distort the degree
  distribution most (high-degree entities survive, as in OpenEA).
"""

from __future__ import annotations

from typing import List, Sequence, Set

import numpy as np

from ..kg.graph import KnowledgeGraph
from ..kg.pair import KGPair, Link


def _induce_graph(graph: KnowledgeGraph, keep: Set[int],
                  name: str) -> KnowledgeGraph:
    out = KnowledgeGraph(name=name)
    for entity in sorted(keep):
        out.add_entity(graph.entity_uri(entity))
    for head, relation, tail in graph.rel_triples:
        if head in keep and tail in keep:
            out.add_rel_triple(
                graph.entity_uri(head), graph.relation_name(relation),
                graph.entity_uri(tail),
            )
    for entity, attribute, value in graph.attr_triples:
        if entity in keep:
            out.add_attr_triple(
                graph.entity_uri(entity), graph.attribute_name(attribute),
                value,
            )
    return out


def induced_subpair(pair: KGPair, keep_links: Sequence[Link],
                    name: str | None = None) -> KGPair:
    """Restrict a pair to the entities of ``keep_links``.

    Triples with a dropped endpoint disappear; attribute triples of kept
    entities are preserved.  Links are re-indexed into the new id space.
    """
    keep_links = list(keep_links)
    keep1 = {a for a, _ in keep_links}
    keep2 = {b for _, b in keep_links}
    sub1 = _induce_graph(pair.kg1, keep1, f"{pair.name}-sub-1")
    sub2 = _induce_graph(pair.kg2, keep2, f"{pair.name}-sub-2")
    links = [
        (sub1.entity_id(pair.kg1.entity_uri(a)),
         sub2.entity_id(pair.kg2.entity_uri(b)))
        for a, b in keep_links
    ]
    return KGPair(kg1=sub1, kg2=sub2, links=links,
                  name=name or f"{pair.name}-sub")


def downsample_pair(pair: KGPair, fraction: float,
                    rng: np.random.Generator | None = None,
                    name: str | None = None) -> KGPair:
    """Keep a uniform random fraction of the linked entities.

    Without an explicit ``rng`` a fixed-seed generator is used, so
    repeated calls produce the same subsample (reproducibility over
    surprise; pass your own generator for varied draws).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")
    rng = rng or np.random.default_rng(0)
    count = max(1, int(round(fraction * len(pair.links))))
    chosen = rng.choice(len(pair.links), size=count, replace=False)
    keep_links = [pair.links[i] for i in sorted(chosen)]
    return induced_subpair(pair, keep_links, name=name)


def degree_preserving_sample(pair: KGPair, target_links: int,
                             rng: np.random.Generator | None = None,
                             rounds: int = 10,
                             name: str | None = None) -> KGPair:
    """IDS-style sampling: iteratively drop low-degree linked entities.

    Each round removes a slice of the remaining links, sampling removals
    with probability inversely proportional to the pair's combined
    relational degree — so well-connected entities survive and the
    sample keeps a realistic (right-skewed) degree distribution, like
    OpenEA's IDS procedure.
    """
    if target_links < 1:
        raise ValueError("target_links must be >= 1")
    rng = rng or np.random.default_rng(0)
    links: List[Link] = list(pair.links)
    if target_links >= len(links):
        return induced_subpair(pair, links, name=name)

    degrees = np.array([
        pair.kg1.degree(a) + pair.kg2.degree(b) for a, b in links
    ], dtype=np.float64)
    per_round = max(1, (len(links) - target_links) // rounds)
    while len(links) > target_links:
        remove = min(per_round, len(links) - target_links)
        weights = 1.0 / (1.0 + degrees)
        weights /= weights.sum()
        drop = set(rng.choice(len(links), size=remove, replace=False,
                              p=weights))
        links = [link for i, link in enumerate(links) if i not in drop]
        degrees = np.array([d for i, d in enumerate(degrees)
                            if i not in drop])
    return induced_subpair(pair, links, name=name)
