"""SRPRS-like dataset generators (sparse, long-tail heavy).

SRPRS (normal version) follows real-world degree distributions: ~65-70% of
entities have degree ≤ 3 (Table VI), relations are few, and entity names
are well-aligned literal strings (extracted from Wikipedia interlanguage
links).  Structure-only methods collapse here; literal-aware methods
(RDGCN/HGCN/CEA/BERT-INT/SDEA) stay strong.

Generated analogue: low relation keeping, no extra person links, no type
edges (they would inflate degrees), plain names on both sides, and a
substantial long-tail fold probability so that many sparse entities carry
only a long comment (the Fig. 2 phenomenon).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kg.pair import KGPair
from .synthesis import ViewConfig, WorldConfig, generate_pair
from .translation import Language

SRPRS_DATASETS = ("en_fr", "en_de", "dbp_wd", "dbp_yg")


@dataclass(frozen=True)
class SRPRSScale:
    """Scale knobs for an SRPRS-like pair."""

    n_persons: int = 160
    n_places: int = 60
    n_clubs: int = 36
    n_countries: int = 12


def build_srprs(dataset: str = "en_fr", seed: int = 31,
                scale: SRPRSScale | None = None) -> KGPair:
    """Generate one SRPRS-like pair.

    ``en_fr`` / ``en_de`` are cross-lingual (pseudo-language on side 2);
    ``dbp_wd`` / ``dbp_yg`` are monolingual with schema heterogeneity only.
    """
    if dataset not in SRPRS_DATASETS:
        raise ValueError(
            f"unknown SRPRS dataset {dataset!r}; expected one of {SRPRS_DATASETS}"
        )
    offset = SRPRS_DATASETS.index(dataset)
    scale = scale or SRPRSScale()
    cross_lingual = dataset in ("en_fr", "en_de")
    language = Language(dataset.split("_")[1]) if cross_lingual else Language("english")
    world = WorldConfig(
        n_persons=scale.n_persons,
        n_places=scale.n_places,
        n_clubs=scale.n_clubs,
        n_countries=scale.n_countries,
        extra_person_links=0,
        comment_sentences=2,
        seed=seed + offset,
    )
    view1 = ViewConfig(
        side=1,
        rel_keep_prob=0.62,
        attr_keep_prob=0.85,
        name_style="plain",
        comment_prob=0.45,
        fold_longtail_prob=0.5,
        type_edges=False,
        seed=seed + 11 + offset,
    )
    view2 = ViewConfig(
        side=2,
        language=language,
        rel_keep_prob=0.62,
        edge_phase=0.3,
        attr_keep_prob=0.85,
        name_style="plain",
        comment_prob=0.45,
        fold_longtail_prob=0.5,
        type_edges=False,
        seed=seed + 29 + offset,
    )
    return generate_pair(world, view1, view2, name=f"srprs-{dataset}")
